package datalog

import (
	"fmt"
	"strings"
)

// Term is a rule argument: either a variable or a constant.
type Term struct {
	Var   string // non-empty for variables
	Const any    // used when Var == ""
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(val any) Term { return Term{Const: val} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

func (t Term) String() string {
	if t.IsVar() {
		return "?" + t.Var
	}
	return fmt.Sprint(t.Const)
}

// Atom is a predicate applied to terms, e.g. contact(?p, ?q).
type Atom struct {
	Pred string
	Args []Term
}

func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// Literal is an atom, possibly negated. Negation is interpreted under
// stratified semantics: the negated predicate must be fully computed in a
// lower stratum.
type Literal struct {
	Atom
	Negated bool
}

func (l Literal) String() string {
	if l.Negated {
		return "!" + l.Atom.String()
	}
	return l.Atom.String()
}

// CmpOp is a comparison operator for filter conditions.
type CmpOp string

// Comparison operators.
const (
	OpEq CmpOp = "=="
	OpNe CmpOp = "!="
	OpLt CmpOp = "<"
	OpLe CmpOp = "<="
	OpGt CmpOp = ">"
	OpGe CmpOp = ">="
)

// Filter is a comparison between two terms, evaluated against a binding.
// Filters are monotone: they only restrict, never retract.
type Filter struct {
	Op   CmpOp
	L, R Term
}

func (f Filter) String() string { return f.L.String() + " " + string(f.Op) + " " + f.R.String() }

// AggKind names an aggregate function.
type AggKind string

// Aggregates. Count, Sum, Max and Min over grouped rows. Max/Min/Count are
// monotone morphisms from the set lattice; Sum is monotone only when the
// aggregated values are non-negative (the analyzer is conservative).
const (
	AggCount AggKind = "count"
	AggSum   AggKind = "sum"
	AggMax   AggKind = "max"
	AggMin   AggKind = "min"
)

// Rule derives head tuples from a conjunctive body with optional negation,
// filters and aggregation:
//
//	head(X, agg<Y>) :- body1(X, Y), !body2(X), X < 10.
//
// When Agg is set, the final head argument is the aggregate of AggVar over
// the groups formed by the remaining head arguments.
type Rule struct {
	Head    Atom
	Body    []Literal
	Filters []Filter
	Agg     AggKind // "" for none
	AggVar  string  // variable aggregated when Agg != ""
}

func (r Rule) String() string {
	parts := make([]string, 0, len(r.Body)+len(r.Filters))
	for _, l := range r.Body {
		parts = append(parts, l.String())
	}
	for _, f := range r.Filters {
		parts = append(parts, f.String())
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Validate checks range restriction: every head variable and every filter
// variable must be bound by a positive body literal, and negated literals
// must not introduce new variables.
func (r Rule) Validate() error {
	bound := map[string]bool{}
	for _, l := range r.Body {
		if l.Negated {
			continue
		}
		for _, t := range l.Args {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
	}
	for _, l := range r.Body {
		if !l.Negated {
			continue
		}
		for _, t := range l.Args {
			if t.IsVar() && !bound[t.Var] {
				return fmt.Errorf("rule %s: variable ?%s appears only under negation", r.Head.Pred, t.Var)
			}
		}
	}
	headArgs := r.Head.Args
	if r.Agg != "" && len(headArgs) > 0 {
		// The final head argument of an aggregate rule is the output
		// slot, filled by the aggregate rather than a body binding.
		headArgs = headArgs[:len(headArgs)-1]
	}
	for _, t := range headArgs {
		if t.IsVar() && !bound[t.Var] {
			return fmt.Errorf("rule %s: head variable ?%s not bound in body", r.Head.Pred, t.Var)
		}
	}
	if r.Agg != "" && r.AggVar != "" && !bound[r.AggVar] {
		return fmt.Errorf("rule %s: aggregate variable ?%s not bound in body", r.Head.Pred, r.AggVar)
	}
	for _, f := range r.Filters {
		for _, t := range []Term{f.L, f.R} {
			if t.IsVar() && !bound[t.Var] {
				return fmt.Errorf("rule %s: filter variable ?%s not bound in body", r.Head.Pred, t.Var)
			}
		}
	}
	return nil
}

// binding maps variable names to constants during evaluation.
type binding map[string]any

func (b binding) clone() binding {
	c := make(binding, len(b)+2)
	for k, v := range b {
		c[k] = v
	}
	return c
}

// resolve returns the constant a term denotes under b, and whether it is
// fully resolved.
func (b binding) resolve(t Term) (any, bool) {
	if !t.IsVar() {
		return t.Const, true
	}
	v, ok := b[t.Var]
	return v, ok
}

// evalFilter applies a comparison under a binding. Unresolvable terms fail
// closed (Validate rules that out for well-formed rules).
func evalFilter(f Filter, b binding) bool {
	l, okL := b.resolve(f.L)
	r, okR := b.resolve(f.R)
	if !okL || !okR {
		return false
	}
	return compareValues(f.Op, l, r)
}

func compareValues(op CmpOp, l, r any) bool {
	// Numeric comparisons coerce int/int64/float64; everything else
	// compares as strings for ordering and natively for (in)equality.
	lf, lNum := toFloat(l)
	rf, rNum := toFloat(r)
	if lNum && rNum {
		switch op {
		case OpEq:
			return lf == rf
		case OpNe:
			return lf != rf
		case OpLt:
			return lf < rf
		case OpLe:
			return lf <= rf
		case OpGt:
			return lf > rf
		case OpGe:
			return lf >= rf
		}
	}
	switch op {
	case OpEq:
		return l == r
	case OpNe:
		return l != r
	}
	ls, rs := fmt.Sprint(l), fmt.Sprint(r)
	switch op {
	case OpLt:
		return ls < rs
	case OpLe:
		return ls <= rs
	case OpGt:
		return ls > rs
	case OpGe:
		return ls >= rs
	}
	return false
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint64:
		return float64(x), true
	case float64:
		return x, true
	}
	return 0, false
}
