package hlang

import (
	"fmt"
	"sort"
	"strings"
)

// Format renders a Program back to canonical HydroLogic source. The paper's
// evolutionary workflow depends on every compiler stage emitting
// "human-centric code ... suitable for eventual refinement by programmers"
// (§1.1); Format is that property for the IR itself, and Parse∘Format is
// the identity on program structure (tested by the round-trip property).
func Format(p *Program) string {
	var b strings.Builder
	for _, t := range p.Tables {
		fmt.Fprintf(&b, "table %s(%s)", t.Name, formatFields(t.Fields))
		if len(t.Key) > 0 {
			fmt.Fprintf(&b, " key(%s)", strings.Join(t.Key, ", "))
		}
		if t.Partition != "" {
			fmt.Fprintf(&b, " partition(%s)", t.Partition)
		}
		b.WriteString("\n")
	}
	for _, v := range p.Vars {
		fmt.Fprintf(&b, "var %s: %s", v.Name, v.Type)
		if v.Init != nil {
			fmt.Fprintf(&b, " = %s", formatExpr(v.Init))
		}
		b.WriteString("\n")
	}
	for _, u := range p.UDFs {
		params := make([]string, len(u.Params))
		for i, t := range u.Params {
			params[i] = t.String()
		}
		fmt.Fprintf(&b, "udf %s(%s) : %s\n", u.Name, strings.Join(params, ", "), u.Result)
	}
	for _, q := range p.Queries {
		fmt.Fprintf(&b, "query %s(%s) :- %s\n", q.Name, formatQueryHead(q), formatBody(q.Body, q.Filters))
	}
	for _, h := range p.Handlers {
		fmt.Fprintf(&b, "on %s(%s)", h.Name, formatFields(h.Params))
		if h.Consistency != "" {
			fmt.Fprintf(&b, " consistency(%s)", h.Consistency)
		}
		for _, r := range h.Requires {
			fmt.Fprintf(&b, " require(%s)", formatExpr(r))
		}
		b.WriteString(" {\n")
		for _, s := range h.Body {
			fmt.Fprintf(&b, "    %s\n", s)
		}
		b.WriteString("}\n")
	}
	if len(p.Availability) > 0 {
		b.WriteString("availability {\n")
		for _, name := range sortedKeys(p.Availability) {
			s := p.Availability[name]
			fmt.Fprintf(&b, "    %s domain=%s failures=%d\n", name, s.Domain, s.Failures)
		}
		b.WriteString("}\n")
	}
	if len(p.Targets) > 0 {
		b.WriteString("target {\n")
		for _, name := range sortedKeys(p.Targets) {
			s := p.Targets[name]
			fmt.Fprintf(&b, "    %s", name)
			if s.LatencyMs > 0 {
				fmt.Fprintf(&b, " latency=%gms", s.LatencyMs)
			}
			if s.Cost > 0 {
				fmt.Fprintf(&b, " cost=%g", s.Cost)
			}
			if s.Processor != "" {
				fmt.Fprintf(&b, " processor=%s", s.Processor)
			}
			b.WriteString("\n")
		}
		b.WriteString("}\n")
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func formatFields(fs []Field) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.Name + ": " + f.Type.String()
	}
	return strings.Join(parts, ", ")
}

func formatQueryHead(q *QueryRule) string {
	parts := make([]string, len(q.Head))
	for i, a := range q.Head {
		if q.Agg != "" && i == len(q.Head)-1 {
			parts[i] = fmt.Sprintf("%s<%s>", q.Agg, q.AggVar)
			continue
		}
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

func formatBody(body []BodyAtom, filters []Expr) string {
	var parts []string
	for _, a := range body {
		parts = append(parts, a.String())
	}
	for _, f := range filters {
		parts = append(parts, formatExpr(f))
	}
	return strings.Join(parts, ", ")
}

// formatExpr renders expressions without the defensive outer parentheses
// Expr.String adds, for declaration positions that reparse either way.
func formatExpr(e Expr) string {
	return e.String()
}
