package hlang

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the monotonicity typechecker the paper calls for in
// §8.2 ("we wish to go further, providing an explicit monotone type
// modifier, and a compiler that can typecheck monotonicity") and the CALM
// analysis that drives the consistency facet: monotone handlers need no
// coordination; non-monotone ones are coordination points.

// Monotonicity classifies a query or handler.
type Monotonicity int

// Monotonicity values.
const (
	// Monotone: output only grows as inputs grow; coordination-free.
	Monotone Monotonicity = iota
	// NonMonotone: may retract or overwrite; requires coordination for
	// deterministic outcomes (CALM theorem).
	NonMonotone
)

func (m Monotonicity) String() string {
	if m == Monotone {
		return "monotone"
	}
	return "non-monotone"
}

// Reason explains one source of non-monotonicity, with position.
type Reason struct {
	At   Pos
	What string
}

func (r Reason) String() string { return fmt.Sprintf("%s: %s", r.At, r.What) }

// QueryInfo is the analysis result for one named query.
type QueryInfo struct {
	Name    string
	Mono    Monotonicity
	Reasons []Reason
}

// HandlerInfo is the analysis result for one handler.
type HandlerInfo struct {
	Name    string
	Mono    Monotonicity
	Reasons []Reason
	// ReadsVars / WritesVars track scalar variable usage for the
	// serializability analysis of §7 (vaccinate is the only writer of
	// vaccine_count, so it serializes locally).
	ReadsVars  []string
	WritesVars []string
	// Tables touched, for metaconsistency dataflow analysis.
	ReadsTables  []string
	WritesTables []string
	// SendsTo lists mailboxes this handler sends to (composition paths).
	SendsTo []string
}

// Analysis is the whole-program monotonicity and dataflow analysis.
type Analysis struct {
	Queries  map[string]*QueryInfo
	Handlers map[string]*HandlerInfo
}

// CoordinationPoints returns the handler names that require coordination
// (non-monotone or declared serializable), sorted.
func (a *Analysis) CoordinationPoints(p *Program) []string {
	var out []string
	for name, h := range a.Handlers {
		decl := p.Handler(name)
		if h.Mono == NonMonotone || (decl != nil && decl.Consistency == Serializable) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Analyze computes monotonicity for every query and handler.
//
// Rules (Bloom/CALM discipline):
//   - A query is monotone iff all its rules use only positive body atoms
//     and no aggregation. (max/min/count are monotone as lattice morphisms,
//     but reading their exact value is a non-monotone act unless consumed
//     through a threshold; we take the conservative relational view.)
//   - merge statements into lattice-typed storage are monotone.
//   - := assignment and delete are non-monotone.
//   - send of monotone-derived tuples is monotone (asynchronous merge).
//   - UDF calls are opaque: monotone per the paper's memoized-UDF
//     semantics, since they cannot read program state.
func Analyze(p *Program) *Analysis {
	a := &Analysis{Queries: map[string]*QueryInfo{}, Handlers: map[string]*HandlerInfo{}}

	// Per-rule reasons first, then propagate through query dependencies:
	// a query depending on a non-monotone query is itself non-monotone.
	queryReasons := map[string][]Reason{}
	for _, q := range p.Queries {
		if q.Agg != "" {
			queryReasons[q.Name] = append(queryReasons[q.Name],
				Reason{At: q.Pos, What: fmt.Sprintf("aggregate %s<%s> is order-sensitive when read as a value", q.Agg, q.AggVar)})
		}
		for _, b := range q.Body {
			if b.Negated {
				queryReasons[q.Name] = append(queryReasons[q.Name],
					Reason{At: b.Pos, What: fmt.Sprintf("negation !%s retracts as %s grows", b.Pred, b.Pred)})
			}
		}
		if _, ok := queryReasons[q.Name]; !ok {
			queryReasons[q.Name] = queryReasons[q.Name] // ensure key exists
		}
	}
	// Propagate: iterate to fixpoint over dependencies.
	for changed := true; changed; {
		changed = false
		for _, q := range p.Queries {
			if len(queryReasons[q.Name]) > 0 {
				continue
			}
			for _, b := range q.Body {
				if dep, ok := queryReasons[b.Pred]; ok && len(dep) > 0 {
					queryReasons[q.Name] = append(queryReasons[q.Name],
						Reason{At: b.Pos, What: fmt.Sprintf("depends on non-monotone query %q", b.Pred)})
					changed = true
					break
				}
			}
		}
	}
	for _, name := range p.QueryNames() {
		info := &QueryInfo{Name: name, Mono: Monotone, Reasons: queryReasons[name]}
		if len(info.Reasons) > 0 {
			info.Mono = NonMonotone
		}
		a.Queries[name] = info
	}

	for _, h := range p.Handlers {
		info := analyzeHandler(p, a, h)
		a.Handlers[h.Name] = info
	}
	return a
}

func analyzeHandler(p *Program, a *Analysis, h *HandlerDecl) *HandlerInfo {
	info := &HandlerInfo{Name: h.Name, Mono: Monotone}
	addReason := func(at Pos, format string, args ...any) {
		info.Mono = NonMonotone
		info.Reasons = append(info.Reasons, Reason{At: at, What: fmt.Sprintf(format, args...)})
	}
	readVar := func(name string) {
		if p.Var(name) != nil {
			info.ReadsVars = appendUnique(info.ReadsVars, name)
		}
	}
	scanExpr := func(e Expr) {
		WalkExpr(e, func(x Expr) {
			switch v := x.(type) {
			case *VarRef:
				readVar(v.Name)
			case *FieldRef:
				info.ReadsTables = appendUnique(info.ReadsTables, v.Table)
			}
		})
	}
	for _, r := range h.Requires {
		scanExpr(r)
	}
	for _, s := range h.Body {
		switch st := s.(type) {
		case *MergeTupleStmt:
			info.WritesTables = appendUnique(info.WritesTables, st.Table)
			for _, e := range st.Args {
				scanExpr(e)
			}
		case *MergeFieldStmt:
			info.WritesTables = appendUnique(info.WritesTables, st.Table)
			scanExpr(st.Key)
			scanExpr(st.Value)
			// Check validated lattice-ness; merge into a lattice column
			// is monotone by construction.
		case *AssignStmt:
			info.WritesVars = appendUnique(info.WritesVars, st.Var)
			scanExpr(st.Value)
			addReason(st.At, "assignment %s := ... overwrites (non-monotonic mutation)", st.Var)
		case *DeleteStmt:
			info.WritesTables = appendUnique(info.WritesTables, st.Table)
			for _, e := range st.Args {
				scanExpr(e)
			}
			addReason(st.At, "delete from %s retracts tuples", st.Table)
		case *SendStmt:
			info.SendsTo = appendUnique(info.SendsTo, st.Mailbox)
			for _, b := range st.Body {
				if b.Negated {
					addReason(st.At, "send rule negates %s", b.Pred)
				}
				if q, ok := a.Queries[b.Pred]; ok && q.Mono == NonMonotone {
					addReason(st.At, "send rule reads non-monotone query %q", b.Pred)
				}
				info.ReadsTables = appendUnique(info.ReadsTables, b.Pred)
			}
		case *ReplyStmt:
			scanExpr(st.Value)
		}
	}
	// Reading a scalar var that anything assigns is a snapshot read of
	// mutable state — fine within a tick, but the *handler* remains
	// monotone only if it does not itself overwrite. (Reads alone do not
	// break monotonicity; the transducer snapshot makes them stable.)
	return info
}

func appendUnique(xs []string, x string) []string {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}

// Report renders a human-readable analysis summary, the artifact Fig 4
// motivates: machine-checked monotonicity instead of Twitter threads.
func (a *Analysis) Report() string {
	var b strings.Builder
	var qnames []string
	for n := range a.Queries {
		qnames = append(qnames, n)
	}
	sort.Strings(qnames)
	for _, n := range qnames {
		q := a.Queries[n]
		fmt.Fprintf(&b, "query %-20s %s\n", n, q.Mono)
		for _, r := range q.Reasons {
			fmt.Fprintf(&b, "    %s\n", r)
		}
	}
	var hnames []string
	for n := range a.Handlers {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := a.Handlers[n]
		fmt.Fprintf(&b, "on %-23s %s\n", n, h.Mono)
		for _, r := range h.Reasons {
			fmt.Fprintf(&b, "    %s\n", r)
		}
	}
	return b.String()
}
