package hlang

// CovidSource is the paper's running example (Fig 2/Fig 3): a simplified
// COVID-19 contact-tracing backend, written in this repository's
// Datalog-flavored HydroLogic syntax. It is shared by tests, examples and
// the E1 experiment.
//
// Handler-by-handler correspondence with Fig 3:
//   - add_person / add_contact: monotonic merges (lines 7-14)
//   - transitive + trace: recursive query over contacts (lines 16-21)
//   - diagnosed: monotonic flag merge + async alert fan-out (lines 23-25)
//   - likelihood: black-box UDF call (lines 27-29)
//   - vaccinate: serializable handler with a non-monotonic decrement and a
//     non-negativity invariant (lines 31-35)
//   - availability / target blocks: lines 37-43
const CovidSource = `
# Simplified COVID-19 tracker (paper Fig 3) in Datalog-flavored HydroLogic.
table people(pid: int, country: string, covid: bool, vaccinated: bool) key(pid) partition(country)
table contacts(a: int, b: int) key(a, b)
var vaccine_count: int = 100

udf covid_predict(int) : float

# transitive closure of the contact graph (Fig 3 lines 16-18)
query transitive(x, y) :- contacts(x, y)
query transitive(x, z) :- transitive(x, y), contacts(y, z)

on add_person(pid: int, country: string) {
    merge people(pid, country, false, false)
    reply "OK"
}

on add_contact(a: int, b: int) {
    merge contacts(a, b)
    merge contacts(b, a)
    reply "OK"
}

on trace(pid: int) {
    send trace_response(p) :- transitive(pid, p)
}

on diagnosed(pid: int) {
    merge people[pid].covid <- true
    send alert(p) :- transitive(pid, p)
    reply "OK"
}

on likelihood(pid: int) {
    reply covid_predict(pid)
}

on vaccinate(pid: int) consistency(serializable) require(vaccine_count >= 0) {
    merge people[pid].vaccinated <- true
    vaccine_count := vaccine_count - 1
    reply "OK"
}

availability {
    default domain=az failures=2
    likelihood domain=az failures=1
}

target {
    default latency=100ms cost=0.01
    likelihood processor=gpu cost=0.1
}
`
