package hlang

import (
	"fmt"
	"sort"
)

// Check runs semantic analysis over a parsed program: name resolution,
// arity/type checks, facet validation, and query stratification sanity.
// Monotonicity classification lives in Analyze (monotone.go); Check only
// rejects ill-formed programs.
func Check(p *Program) error {
	if err := checkDecls(p); err != nil {
		return err
	}
	for _, q := range p.Queries {
		if err := checkQuery(p, q); err != nil {
			return err
		}
	}
	for _, h := range p.Handlers {
		if err := checkHandler(p, h); err != nil {
			return err
		}
	}
	if err := checkFacets(p); err != nil {
		return err
	}
	return checkStratified(p)
}

func checkDecls(p *Program) error {
	seen := map[string]Pos{}
	declare := func(kind, name string, pos Pos) error {
		if prev, ok := seen[name]; ok {
			return errAt(pos, "%s %q redeclared (previously at %s)", kind, name, prev)
		}
		seen[name] = pos
		return nil
	}
	for _, t := range p.Tables {
		if err := declare("table", t.Name, t.Pos); err != nil {
			return err
		}
		if len(t.Fields) == 0 {
			return errAt(t.Pos, "table %q has no columns", t.Name)
		}
		cols := map[string]bool{}
		for _, f := range t.Fields {
			if cols[f.Name] {
				return errAt(t.Pos, "table %q: duplicate column %q", t.Name, f.Name)
			}
			cols[f.Name] = true
		}
		for _, k := range t.Key {
			if !cols[k] {
				return errAt(t.Pos, "table %q: key column %q not declared", t.Name, k)
			}
		}
		if t.Partition != "" && !cols[t.Partition] {
			return errAt(t.Pos, "table %q: partition column %q not declared", t.Name, t.Partition)
		}
	}
	for _, v := range p.Vars {
		if err := declare("var", v.Name, v.Pos); err != nil {
			return err
		}
	}
	for _, u := range p.UDFs {
		if err := declare("udf", u.Name, u.Pos); err != nil {
			return err
		}
	}
	handlerSeen := map[string]Pos{}
	for _, h := range p.Handlers {
		if prev, ok := handlerSeen[h.Name]; ok {
			return errAt(h.Pos, "handler %q redeclared (previously at %s)", h.Name, prev)
		}
		handlerSeen[h.Name] = h.Pos
		if _, clash := seen[h.Name]; clash {
			return errAt(h.Pos, "handler %q clashes with a table/var/udf name", h.Name)
		}
	}
	// Query names may not clash with tables (they share predicate space).
	for _, q := range p.Queries {
		if p.Table(q.Name) != nil {
			return errAt(q.Pos, "query %q clashes with a table name", q.Name)
		}
	}
	return nil
}

// predArity returns the arity of a body predicate: a table, a query, or a
// handler mailbox (handlers can be joined as their message mailboxes).
func predArity(p *Program, name string) (int, bool) {
	if t := p.Table(name); t != nil {
		return t.Arity(), true
	}
	for _, q := range p.Queries {
		if q.Name == name {
			return len(q.Head), true
		}
	}
	if h := p.Handler(name); h != nil {
		return len(h.Params), true
	}
	return 0, false
}

func checkBody(p *Program, owner string, body []BodyAtom, filters []Expr, boundOut map[string]bool) error {
	for _, a := range body {
		arity, ok := predArity(p, a.Pred)
		if !ok {
			return errAt(a.Pos, "%s: unknown predicate %q", owner, a.Pred)
		}
		if len(a.Args) != arity {
			return errAt(a.Pos, "%s: predicate %q wants %d args, got %d", owner, a.Pred, arity, len(a.Args))
		}
		if !a.Negated {
			for _, arg := range a.Args {
				if arg.Var != "" {
					boundOut[arg.Var] = true
				}
			}
		}
	}
	for _, a := range body {
		if !a.Negated {
			continue
		}
		for _, arg := range a.Args {
			if arg.Var != "" && !boundOut[arg.Var] {
				return errAt(a.Pos, "%s: variable %q appears only under negation", owner, arg.Var)
			}
		}
	}
	for _, f := range filters {
		var bad string
		WalkExpr(f, func(e Expr) {
			if v, ok := e.(*VarRef); ok && !boundOut[v.Name] && p.Var(v.Name) == nil && bad == "" {
				bad = v.Name
			}
		})
		if bad != "" {
			return fmt.Errorf("%s: filter references unbound variable %q", owner, bad)
		}
	}
	return nil
}

func checkQuery(p *Program, q *QueryRule) error {
	owner := "query " + q.Name
	bound := map[string]bool{}
	if err := checkBody(p, owner, q.Body, q.Filters, bound); err != nil {
		return err
	}
	if len(q.Body) == 0 {
		return errAt(q.Pos, "%s: empty body", owner)
	}
	for i, h := range q.Head {
		// The aggregate output slot is produced, not consumed.
		if q.Agg != "" && i == len(q.Head)-1 {
			continue
		}
		if h.Var != "" && !bound[h.Var] {
			return errAt(q.Pos, "%s: head variable %q not bound in body", owner, h.Var)
		}
	}
	if q.Agg != "" && !bound[q.AggVar] {
		return errAt(q.Pos, "%s: aggregate variable %q not bound in body", owner, q.AggVar)
	}
	// All rules for one query name must agree on arity.
	for _, other := range p.Queries {
		if other.Name == q.Name && len(other.Head) != len(q.Head) {
			return errAt(q.Pos, "%s: conflicting arities across rules", owner)
		}
	}
	return nil
}

func checkHandler(p *Program, h *HandlerDecl) error {
	owner := "handler " + h.Name
	scope := map[string]bool{}
	for _, prm := range h.Params {
		scope[prm.Name] = true
	}
	checkExpr := func(e Expr) error {
		var err error
		WalkExpr(e, func(x Expr) {
			if err != nil {
				return
			}
			switch v := x.(type) {
			case *VarRef:
				if !scope[v.Name] && p.Var(v.Name) == nil {
					err = fmt.Errorf("%s: unknown name %q", owner, v.Name)
				}
			case *FieldRef:
				t := p.Table(v.Table)
				if t == nil {
					err = fmt.Errorf("%s: unknown table %q", owner, v.Table)
					return
				}
				if t.FieldIndex(v.Field) < 0 {
					err = fmt.Errorf("%s: table %q has no column %q", owner, v.Table, v.Field)
				}
			case *CallExpr:
				u := p.UDF(v.Func)
				if u == nil {
					err = fmt.Errorf("%s: unknown UDF %q", owner, v.Func)
					return
				}
				if len(v.Args) != len(u.Params) {
					err = fmt.Errorf("%s: UDF %q wants %d args, got %d", owner, v.Func, len(u.Params), len(v.Args))
				}
			}
		})
		return err
	}
	for _, r := range h.Requires {
		if err := checkExpr(r); err != nil {
			return err
		}
	}
	replied := false
	for _, s := range h.Body {
		switch st := s.(type) {
		case *MergeTupleStmt:
			t := p.Table(st.Table)
			if t == nil {
				return errAt(st.At, "%s: merge into unknown table %q", owner, st.Table)
			}
			if len(st.Args) != t.Arity() {
				return errAt(st.At, "%s: table %q wants %d columns, got %d", owner, st.Table, t.Arity(), len(st.Args))
			}
			for _, a := range st.Args {
				if err := checkExpr(a); err != nil {
					return err
				}
			}
		case *MergeFieldStmt:
			t := p.Table(st.Table)
			if t == nil {
				return errAt(st.At, "%s: merge into unknown table %q", owner, st.Table)
			}
			fi := t.FieldIndex(st.Field)
			if fi < 0 {
				return errAt(st.At, "%s: table %q has no column %q", owner, st.Table, st.Field)
			}
			if !t.Fields[fi].Type.IsLattice() {
				return errAt(st.At, "%s: column %s.%s has non-lattice type %s; use := via a keyed update or declare a lattice type",
					owner, st.Table, st.Field, t.Fields[fi].Type)
			}
			if err := checkExpr(st.Key); err != nil {
				return err
			}
			if err := checkExpr(st.Value); err != nil {
				return err
			}
		case *AssignStmt:
			if p.Var(st.Var) == nil {
				return errAt(st.At, "%s: assignment to undeclared var %q", owner, st.Var)
			}
			if err := checkExpr(st.Value); err != nil {
				return err
			}
		case *DeleteStmt:
			t := p.Table(st.Table)
			if t == nil {
				return errAt(st.At, "%s: delete from unknown table %q", owner, st.Table)
			}
			if len(st.Args) != len(t.Key) {
				return errAt(st.At, "%s: delete from %q keys on %d columns, got %d", owner, st.Table, len(t.Key), len(st.Args))
			}
			for _, a := range st.Args {
				if err := checkExpr(a); err != nil {
					return err
				}
			}
		case *SendStmt:
			// The mailbox may be a declared handler (internal call), or a
			// free mailbox (external service) — both allowed; arity is
			// checked when it is a known handler.
			if tgt := p.Handler(st.Mailbox); tgt != nil && len(st.Args) != len(tgt.Params) {
				return errAt(st.At, "%s: send to %q wants %d args, got %d", owner, st.Mailbox, len(tgt.Params), len(st.Args))
			}
			if len(st.Body) > 0 {
				bound := map[string]bool{}
				for prm := range scope {
					bound[prm] = true
				}
				if err := checkBody(p, owner, st.Body, st.Filters, bound); err != nil {
					return err
				}
				for _, a := range st.Args {
					if a.Var != "" && !bound[a.Var] {
						return errAt(st.At, "%s: send argument %q not bound by rule body or params", owner, a.Var)
					}
				}
			} else {
				for _, a := range st.Args {
					if a.Wildcard {
						return errAt(st.At, "%s: wildcard in a plain send", owner)
					}
					if a.Var != "" && !scope[a.Var] && p.Var(a.Var) == nil {
						return errAt(st.At, "%s: unknown name %q in send", owner, a.Var)
					}
				}
			}
		case *ReplyStmt:
			if err := checkExpr(st.Value); err != nil {
				return err
			}
			replied = true
		}
	}
	_ = replied // handlers may be fire-and-forget; no reply required
	return nil
}

func checkFacets(p *Program) error {
	names := map[string]bool{"default": true}
	for _, h := range p.Handlers {
		names[h.Name] = true
	}
	var keys []string
	for k := range p.Availability {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !names[k] {
			return fmt.Errorf("availability: unknown handler %q", k)
		}
		if p.Availability[k].Failures < 0 {
			return fmt.Errorf("availability %q: negative failure count", k)
		}
	}
	keys = keys[:0]
	for k := range p.Targets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !names[k] {
			return fmt.Errorf("target: unknown handler %q", k)
		}
		t := p.Targets[k]
		if t.LatencyMs < 0 || t.Cost < 0 {
			return fmt.Errorf("target %q: negative latency or cost", k)
		}
	}
	return nil
}

// checkStratified rejects negation or aggregation through query recursion,
// mirroring the datalog stratifier at the language level so errors carry
// source positions.
func checkStratified(p *Program) error {
	queryNames := map[string]bool{}
	for _, q := range p.Queries {
		queryNames[q.Name] = true
	}
	stratum := map[string]int{}
	n := len(queryNames)
	for iter := 0; iter <= n*n+1; iter++ {
		changed := false
		for _, q := range p.Queries {
			for _, a := range q.Body {
				if !queryNames[a.Pred] {
					continue
				}
				need := stratum[a.Pred]
				if a.Negated || q.Agg != "" {
					need++
				}
				if stratum[q.Name] < need {
					stratum[q.Name] = need
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if iter == n*n+1 || anyExceeds(stratum, n) {
			return fmt.Errorf("queries are not stratifiable: negation or aggregation through recursion")
		}
	}
	return nil
}

func anyExceeds(m map[string]int, n int) bool {
	for _, v := range m {
		if v > n {
			return true
		}
	}
	return false
}
