package hlang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokDuration // e.g. 100ms — used in target specs
	tokPunct    // operators and delimiters
	tokNewline
)

type token struct {
	kind tokKind
	text string
	pos  Pos
	i    int64
	f    float64
	s    string
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokNewline:
		return "newline"
	default:
		return strconv.Quote(t.text)
	}
}

// Error is a positioned syntax or semantic error.
type Error struct {
	P   Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.P, e.Msg) }

func errAt(p Pos, format string, args ...any) *Error {
	return &Error{P: p, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes src. Newlines are significant (statement separators);
// comments run from '#' to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	emit := func(t token) { toks = append(toks, t) }
	for i < len(src) {
		c := src[i]
		pos := Pos{Line: line, Col: col}
		switch {
		case c == '\n':
			emit(token{kind: tokNewline, text: "\\n", pos: pos})
			line++
			col = 1
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
			col++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '"':
			j := i + 1
			var b strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' && j+1 < len(src) {
					j++
					switch src[j] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					default:
						b.WriteByte(src[j])
					}
				} else if src[j] == '\n' {
					return nil, errAt(pos, "unterminated string literal")
				} else {
					b.WriteByte(src[j])
				}
				j++
			}
			if j >= len(src) {
				return nil, errAt(pos, "unterminated string literal")
			}
			emit(token{kind: tokString, text: src[i : j+1], pos: pos, s: b.String()})
			col += j + 1 - i
			i = j + 1
		case unicode.IsDigit(rune(c)):
			j := i
			isFloat := false
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.') {
				if src[j] == '.' {
					if isFloat {
						break
					}
					isFloat = true
				}
				j++
			}
			text := src[i:j]
			// Duration suffix: ms or s (target facet latencies).
			if j < len(src) && (src[j] == 'm' || src[j] == 's') {
				k := j
				for k < len(src) && unicode.IsLetter(rune(src[k])) {
					k++
				}
				unit := src[j:k]
				if unit == "ms" || unit == "s" {
					f, err := strconv.ParseFloat(text, 64)
					if err != nil {
						return nil, errAt(pos, "bad duration %q", src[i:k])
					}
					if unit == "s" {
						f *= 1000
					}
					emit(token{kind: tokDuration, text: src[i:k], pos: pos, f: f})
					col += k - i
					i = k
					continue
				}
			}
			if isFloat {
				f, err := strconv.ParseFloat(text, 64)
				if err != nil {
					return nil, errAt(pos, "bad float %q", text)
				}
				emit(token{kind: tokFloat, text: text, pos: pos, f: f})
			} else {
				n, err := strconv.ParseInt(text, 10, 64)
				if err != nil {
					return nil, errAt(pos, "bad integer %q", text)
				}
				emit(token{kind: tokInt, text: text, pos: pos, i: n})
			}
			col += j - i
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			emit(token{kind: tokIdent, text: src[i:j], pos: pos})
			col += j - i
			i = j
		default:
			// Multi-char operators first.
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case ":-", ":=", "<-", "==", "!=", "<=", ">=", "&&", "||":
				emit(token{kind: tokPunct, text: two, pos: pos})
				i += 2
				col += 2
				continue
			}
			switch c {
			case '(', ')', '{', '}', '[', ']', ',', ':', '.', '=', '<', '>', '!', '+', '-', '*', '/':
				emit(token{kind: tokPunct, text: string(c), pos: pos})
				i++
				col++
			default:
				return nil, errAt(pos, "unexpected character %q", string(c))
			}
		}
	}
	emit(token{kind: tokEOF, text: "", pos: Pos{Line: line, Col: col}})
	return toks, nil
}
