package hlang

import (
	"fmt"
	"strconv"
)

// Expr is a HydroLogic expression.
type Expr interface {
	expr()
	String() string
}

// IntLit is an integer literal.
type IntLit struct{ V int64 }

// FloatLit is a floating-point literal.
type FloatLit struct{ V float64 }

// StringLit is a string literal.
type StringLit struct{ V string }

// BoolLit is true/false.
type BoolLit struct{ V bool }

// VarRef names a handler parameter or program variable.
type VarRef struct{ Name string }

// FieldRef reads a column of a keyed table row: people[pid].covid.
type FieldRef struct {
	Table string
	Key   Expr
	Field string
}

// BinExpr is a binary operation. Ops: + - * / and comparisons == != < <= >
// >= plus && and ||.
type BinExpr struct {
	Op   string
	L, R Expr
}

// CallExpr invokes a declared UDF.
type CallExpr struct {
	Func string
	Args []Expr
}

func (*IntLit) expr()    {}
func (*FloatLit) expr()  {}
func (*StringLit) expr() {}
func (*BoolLit) expr()   {}
func (*VarRef) expr()    {}
func (*FieldRef) expr()  {}
func (*BinExpr) expr()   {}
func (*CallExpr) expr()  {}

func (e *IntLit) String() string    { return strconv.FormatInt(e.V, 10) }
func (e *FloatLit) String() string  { return strconv.FormatFloat(e.V, 'g', -1, 64) }
func (e *StringLit) String() string { return strconv.Quote(e.V) }
func (e *BoolLit) String() string   { return strconv.FormatBool(e.V) }
func (e *VarRef) String() string    { return e.Name }
func (e *FieldRef) String() string {
	return fmt.Sprintf("%s[%s].%s", e.Table, e.Key, e.Field)
}
func (e *BinExpr) String() string { return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")" }
func (e *CallExpr) String() string {
	return e.Func + "(" + exprList(e.Args) + ")"
}

// WalkExpr visits e and all sub-expressions depth-first.
func WalkExpr(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch x := e.(type) {
	case *FieldRef:
		WalkExpr(x.Key, visit)
	case *BinExpr:
		WalkExpr(x.L, visit)
		WalkExpr(x.R, visit)
	case *CallExpr:
		for _, a := range x.Args {
			WalkExpr(a, visit)
		}
	}
}
