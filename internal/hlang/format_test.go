package hlang

import (
	"reflect"
	"strings"
	"testing"
)

func TestFormatRoundTripsCovid(t *testing.T) {
	p1, err := Parse(CovidSource)
	if err != nil {
		t.Fatal(err)
	}
	src2 := Format(p1)
	p2, err := Parse(src2)
	if err != nil {
		t.Fatalf("formatted source does not reparse: %v\n%s", err, src2)
	}
	// Structural equality on the round trip.
	if len(p1.Tables) != len(p2.Tables) || len(p1.Handlers) != len(p2.Handlers) ||
		len(p1.Queries) != len(p2.Queries) || len(p1.Vars) != len(p2.Vars) {
		t.Fatal("declaration counts changed across round trip")
	}
	for i := range p1.Tables {
		a, b := *p1.Tables[i], *p2.Tables[i]
		a.Pos, b.Pos = Pos{}, Pos{} // positions necessarily differ
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("table %d changed:\n%+v\n%+v", i, a, b)
		}
	}
	if !reflect.DeepEqual(p1.Availability, p2.Availability) {
		t.Fatalf("availability changed: %v vs %v", p1.Availability, p2.Availability)
	}
	if !reflect.DeepEqual(p1.Targets, p2.Targets) {
		t.Fatalf("targets changed: %v vs %v", p1.Targets, p2.Targets)
	}
	// Second round trip must be a fixed point textually.
	src3 := Format(p2)
	if src2 != src3 {
		t.Fatalf("Format not idempotent:\n--- first\n%s\n--- second\n%s", src2, src3)
	}
}

func TestFormatRoundTripsAggregatesAndStatements(t *testing.T) {
	src := `
table sale(region: string, amt: int) key(region, amt)
table acct(id: int, score: max<int>, tags: set<string>) key(id)
var total: int = 0
query best(region, max<amt>) :- sale(region, amt), amt > 0
on record(region: string, amt: int) consistency(causal) {
    merge sale(region, amt)
    merge acct[amt].score <- amt
    total := total + amt
    send downstream(x) :- best(region, x)
    delete sale(region, amt)
    reply "OK"
}
`
	p1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	formatted := Format(p1)
	p2, err := Parse(formatted)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, formatted)
	}
	if len(p2.Handlers[0].Body) != 6 {
		t.Fatalf("statements lost: %d", len(p2.Handlers[0].Body))
	}
	if p2.Queries[0].Agg != "max" || p2.Queries[0].AggVar != "amt" {
		t.Fatalf("aggregate lost: %+v", p2.Queries[0])
	}
	if p2.Handlers[0].Consistency != Causal {
		t.Fatal("consistency annotation lost")
	}
	if !strings.Contains(formatted, "max<amt>") {
		t.Fatalf("formatted:\n%s", formatted)
	}
}
