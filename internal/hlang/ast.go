// Package hlang defines the HydroLogic intermediate representation (§3 of
// the paper): a declarative, faceted language with tables, lattice-typed
// variables, Datalog-style queries, event handlers, and the three
// distribution facets (availability, consistency, targets). It provides a
// lexer, parser, semantic checker and the monotonicity typechecker that §8.2
// calls for.
//
// The concrete syntax here is Datalog/Bloom-flavored rather than the
// paper's expository Pythonic sketch; the paper explicitly defers concrete
// syntax design. Example:
//
//	table people(pid: int, country: string, covid: bool) key(pid) partition(country)
//	var vaccine_count: int = 100
//
//	query transitive(x, y) :- contacts(x, y)
//	query transitive(x, z) :- transitive(x, y), contacts(y, z)
//
//	on vaccinate(pid: int) consistency(serializable) require(vaccine_count >= 0) {
//	    merge people[pid].vaccinated <- true
//	    vaccine_count := vaccine_count - 1
//	    reply "OK"
//	}
//
//	availability { default domain=az failures=2 }
//	target { default latency=100ms cost=0.01 }
package hlang

import (
	"fmt"
	"strings"
)

// Pos is a source position for diagnostics.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Type is a HydroLogic value type. Lattice-ness is part of the type: a Bool
// column merged with `merge` behaves as the or-lattice; MaxInt as the max
// lattice; SetOf as the union lattice.
type Type struct {
	Kind TypeKind
	Elem *Type // for SetOf
}

// TypeKind enumerates HydroLogic types.
type TypeKind int

// Type kinds.
const (
	TInt TypeKind = iota
	TFloat
	TString
	TBool
	TMaxInt // max-lattice integer
	TSet    // grow-only set of Elem
)

func (t Type) String() string {
	switch t.Kind {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TString:
		return "string"
	case TBool:
		return "bool"
	case TMaxInt:
		return "max<int>"
	case TSet:
		return "set<" + t.Elem.String() + ">"
	}
	return "?"
}

// IsLattice reports whether merge on this type is a true lattice join
// (monotonic). Plain int/float/string have no join, so merging them is a
// type error; bool merges as or.
func (t Type) IsLattice() bool {
	switch t.Kind {
	case TBool, TMaxInt, TSet:
		return true
	}
	return false
}

// Field is a named, typed table column.
type Field struct {
	Name string
	Type Type
}

// TableDecl declares persistent state (the data-model facet, §5).
type TableDecl struct {
	Pos       Pos
	Name      string
	Fields    []Field
	Key       []string // key column names; defaults to the first column
	Partition string   // optional partition column hint
}

// Arity returns the number of columns.
func (t *TableDecl) Arity() int { return len(t.Fields) }

// FieldIndex returns the column index of name, or -1.
func (t *TableDecl) FieldIndex(name string) int {
	for i, f := range t.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// VarDecl declares a scalar program variable (e.g. vaccine_count).
type VarDecl struct {
	Pos  Pos
	Name string
	Type Type
	Init Expr // optional
}

// QueryArg is an argument of a query head or body atom: a variable,
// constant, or wildcard.
type QueryArg struct {
	Var      string // variable name if non-empty
	Const    Expr   // literal constant when Var == "" and !Wildcard
	Wildcard bool
}

func (a QueryArg) String() string {
	switch {
	case a.Wildcard:
		return "_"
	case a.Var != "":
		return a.Var
	default:
		return a.Const.String()
	}
}

// BodyAtom is one conjunct of a query body: predicate over args, possibly
// negated.
type BodyAtom struct {
	Pos     Pos
	Pred    string
	Args    []QueryArg
	Negated bool
}

func (b BodyAtom) String() string {
	parts := make([]string, len(b.Args))
	for i, a := range b.Args {
		parts[i] = a.String()
	}
	s := b.Pred + "(" + strings.Join(parts, ", ") + ")"
	if b.Negated {
		return "!" + s
	}
	return s
}

// QueryRule is one rule contributing to a named query. Multiple rules with
// the same name merge their results, as in Datalog (paper §3.1: base and
// inductive cases of transitive closure).
type QueryRule struct {
	Pos     Pos
	Name    string
	Head    []QueryArg
	Body    []BodyAtom
	Filters []Expr // boolean expressions over body variables
	Agg     string // "", "count", "sum", "max", "min"
	AggVar  string // aggregated variable when Agg != ""
}

// ConsistencyLevel is a history-based consistency spec for a handler (§7).
type ConsistencyLevel string

// Consistency levels, weakest to strongest.
const (
	Eventual     ConsistencyLevel = "eventual"
	Causal       ConsistencyLevel = "causal"
	Serializable ConsistencyLevel = "serializable"
)

// HandlerDecl is an `on` handler: the reaction to one mailbox of messages.
type HandlerDecl struct {
	Pos         Pos
	Name        string
	Params      []Field
	Consistency ConsistencyLevel // "" means default (eventual)
	Requires    []Expr           // application-centric invariants (§7.1)
	Body        []Stmt
}

// UDFDecl imports a black-box function (FaaS-style UDF).
type UDFDecl struct {
	Pos    Pos
	Name   string
	Params []Type
	Result Type
}

// Stmt is a handler statement.
type Stmt interface {
	stmt()
	Pos() Pos
	String() string
}

// MergeTupleStmt inserts a tuple into a table: `merge people(pid, c, false)`.
// Monotonic.
type MergeTupleStmt struct {
	At    Pos
	Table string
	Args  []Expr
}

// MergeFieldStmt merges a lattice value into one column of a keyed row:
// `merge people[pid].covid <- true`. Monotonic iff the column type is a
// lattice.
type MergeFieldStmt struct {
	At    Pos
	Table string
	Key   Expr
	Field string
	Value Expr
}

// AssignStmt is an arbitrary (non-monotonic) variable overwrite:
// `vaccine_count := vaccine_count - 1`.
type AssignStmt struct {
	At    Pos
	Var   string
	Value Expr
}

// SendStmt asynchronously merges tuples into a mailbox. With a Query body it
// sends one message per derived row (`send alert(p) :- transitive(pid, p)`);
// without, it sends the single tuple of Args.
type SendStmt struct {
	At      Pos
	Mailbox string
	Args    []QueryArg
	Body    []BodyAtom // optional rule body
	Filters []Expr
}

// DeleteStmt removes a tuple (non-monotonic): `delete people(pid, ...)`.
type DeleteStmt struct {
	At    Pos
	Table string
	Args  []Expr
}

// ReplyStmt returns a value to the caller's response mailbox.
type ReplyStmt struct {
	At    Pos
	Value Expr
}

func (s *MergeTupleStmt) stmt() {}
func (s *MergeFieldStmt) stmt() {}
func (s *AssignStmt) stmt()     {}
func (s *SendStmt) stmt()       {}
func (s *DeleteStmt) stmt()     {}
func (s *ReplyStmt) stmt()      {}

// Pos implements Stmt.
func (s *MergeTupleStmt) Pos() Pos { return s.At }

// Pos implements Stmt.
func (s *MergeFieldStmt) Pos() Pos { return s.At }

// Pos implements Stmt.
func (s *AssignStmt) Pos() Pos { return s.At }

// Pos implements Stmt.
func (s *SendStmt) Pos() Pos { return s.At }

// Pos implements Stmt.
func (s *DeleteStmt) Pos() Pos { return s.At }

// Pos implements Stmt.
func (s *ReplyStmt) Pos() Pos { return s.At }

func exprList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

func (s *MergeTupleStmt) String() string {
	return "merge " + s.Table + "(" + exprList(s.Args) + ")"
}

func (s *MergeFieldStmt) String() string {
	return fmt.Sprintf("merge %s[%s].%s <- %s", s.Table, s.Key, s.Field, s.Value)
}

func (s *AssignStmt) String() string { return s.Var + " := " + s.Value.String() }

func (s *SendStmt) String() string {
	parts := make([]string, len(s.Args))
	for i, a := range s.Args {
		parts[i] = a.String()
	}
	out := "send " + s.Mailbox + "(" + strings.Join(parts, ", ") + ")"
	if len(s.Body) > 0 {
		bodyParts := make([]string, len(s.Body))
		for i, b := range s.Body {
			bodyParts[i] = b.String()
		}
		out += " :- " + strings.Join(bodyParts, ", ")
	}
	return out
}

func (s *DeleteStmt) String() string {
	return "delete " + s.Table + "(" + exprList(s.Args) + ")"
}

func (s *ReplyStmt) String() string { return "reply " + s.Value.String() }

// AvailSpec configures the availability facet for one handler (§6).
type AvailSpec struct {
	Domain   string // "vm", "rack", "dc", "az"
	Failures int    // tolerate f failures across that domain
}

// TargetSpec configures the target facet for one handler (§9).
type TargetSpec struct {
	LatencyMs float64 // 0 = unconstrained
	Cost      float64 // per-call budget; 0 = unconstrained
	Processor string  // "", "cpu", "gpu"
}

// Program is a parsed HydroLogic compilation unit.
type Program struct {
	Tables   []*TableDecl
	Vars     []*VarDecl
	Queries  []*QueryRule
	Handlers []*HandlerDecl
	UDFs     []*UDFDecl

	// Facet blocks, keyed by handler name; "default" applies to all
	// handlers without an explicit entry.
	Availability map[string]AvailSpec
	Targets      map[string]TargetSpec
}

// Table returns the named table declaration, or nil.
func (p *Program) Table(name string) *TableDecl {
	for _, t := range p.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Var returns the named variable declaration, or nil.
func (p *Program) Var(name string) *VarDecl {
	for _, v := range p.Vars {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// Handler returns the named handler, or nil.
func (p *Program) Handler(name string) *HandlerDecl {
	for _, h := range p.Handlers {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// UDF returns the named UDF declaration, or nil.
func (p *Program) UDF(name string) *UDFDecl {
	for _, u := range p.UDFs {
		if u.Name == name {
			return u
		}
	}
	return nil
}

// QueryNames returns distinct query names in declaration order.
func (p *Program) QueryNames() []string {
	var names []string
	seen := map[string]bool{}
	for _, q := range p.Queries {
		if !seen[q.Name] {
			seen[q.Name] = true
			names = append(names, q.Name)
		}
	}
	return names
}

// AvailabilityFor resolves the effective availability spec for a handler,
// falling back to the default and then to a single-failure VM domain.
func (p *Program) AvailabilityFor(handler string) AvailSpec {
	if s, ok := p.Availability[handler]; ok {
		return s
	}
	if s, ok := p.Availability["default"]; ok {
		return s
	}
	return AvailSpec{Domain: "vm", Failures: 1}
}

// TargetFor resolves the effective target spec for a handler.
func (p *Program) TargetFor(handler string) TargetSpec {
	if s, ok := p.Targets[handler]; ok {
		return s
	}
	if s, ok := p.Targets["default"]; ok {
		return s
	}
	return TargetSpec{}
}
