package hlang

// Parse parses a HydroLogic source file into a Program and runs semantic
// checks (name resolution, typing, facet validation).
func Parse(src string) (*Program, error) {
	p, err := ParseOnly(src)
	if err != nil {
		return nil, err
	}
	if err := Check(p); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseOnly parses without semantic checking (used by tests that exercise
// the checker separately).
func ParseOnly(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	pr := &parser{toks: toks}
	return pr.program()
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) peek() token { return p.toks[min(p.i+1, len(p.toks)-1)] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// skipNewlines consumes any run of newline tokens.
func (p *parser) skipNewlines() {
	for p.cur().kind == tokNewline {
		p.next()
	}
}

func (p *parser) expectPunct(s string) (token, error) {
	t := p.cur()
	if t.kind != tokPunct || t.text != s {
		return t, errAt(t.pos, "expected %q, found %s", s, t)
	}
	return p.next(), nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return t, errAt(t.pos, "expected identifier, found %s", t)
	}
	return p.next(), nil
}

func (p *parser) atPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) atIdent(s string) bool {
	t := p.cur()
	return t.kind == tokIdent && t.text == s
}

func (p *parser) program() (*Program, error) {
	prog := &Program{
		Availability: map[string]AvailSpec{},
		Targets:      map[string]TargetSpec{},
	}
	for {
		p.skipNewlines()
		t := p.cur()
		if t.kind == tokEOF {
			return prog, nil
		}
		if t.kind != tokIdent {
			return nil, errAt(t.pos, "expected declaration, found %s", t)
		}
		switch t.text {
		case "table":
			d, err := p.tableDecl()
			if err != nil {
				return nil, err
			}
			prog.Tables = append(prog.Tables, d)
		case "var":
			d, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			prog.Vars = append(prog.Vars, d)
		case "query":
			d, err := p.queryRule()
			if err != nil {
				return nil, err
			}
			prog.Queries = append(prog.Queries, d)
		case "on":
			d, err := p.handlerDecl()
			if err != nil {
				return nil, err
			}
			prog.Handlers = append(prog.Handlers, d)
		case "udf":
			d, err := p.udfDecl()
			if err != nil {
				return nil, err
			}
			prog.UDFs = append(prog.UDFs, d)
		case "availability":
			if err := p.availBlock(prog); err != nil {
				return nil, err
			}
		case "target":
			if err := p.targetBlock(prog); err != nil {
				return nil, err
			}
		default:
			return nil, errAt(t.pos, "unknown declaration %q", t.text)
		}
	}
}

func (p *parser) parseType() (Type, error) {
	t, err := p.expectIdent()
	if err != nil {
		return Type{}, err
	}
	switch t.text {
	case "int":
		return Type{Kind: TInt}, nil
	case "float":
		return Type{Kind: TFloat}, nil
	case "string":
		return Type{Kind: TString}, nil
	case "bool":
		return Type{Kind: TBool}, nil
	case "max":
		if _, err := p.expectPunct("<"); err != nil {
			return Type{}, err
		}
		inner, err := p.expectIdent()
		if err != nil {
			return Type{}, err
		}
		if inner.text != "int" {
			return Type{}, errAt(inner.pos, "max<> supports only int")
		}
		if _, err := p.expectPunct(">"); err != nil {
			return Type{}, err
		}
		return Type{Kind: TMaxInt}, nil
	case "set":
		if _, err := p.expectPunct("<"); err != nil {
			return Type{}, err
		}
		elem, err := p.parseType()
		if err != nil {
			return Type{}, err
		}
		if _, err := p.expectPunct(">"); err != nil {
			return Type{}, err
		}
		return Type{Kind: TSet, Elem: &elem}, nil
	}
	return Type{}, errAt(t.pos, "unknown type %q", t.text)
}

func (p *parser) fieldList(close string) ([]Field, error) {
	var fields []Field
	for !p.atPunct(close) {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fields = append(fields, Field{Name: name.text, Type: ty})
		if p.atPunct(",") {
			p.next()
		}
	}
	p.next() // consume close
	return fields, nil
}

func (p *parser) tableDecl() (*TableDecl, error) {
	kw := p.next() // "table"
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	fields, err := p.fieldList(")")
	if err != nil {
		return nil, err
	}
	d := &TableDecl{Pos: kw.pos, Name: name.text, Fields: fields}
	for p.cur().kind == tokIdent {
		opt := p.next()
		switch opt.text {
		case "key":
			if _, err := p.expectPunct("("); err != nil {
				return nil, err
			}
			for !p.atPunct(")") {
				k, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				d.Key = append(d.Key, k.text)
				if p.atPunct(",") {
					p.next()
				}
			}
			p.next()
		case "partition":
			if _, err := p.expectPunct("("); err != nil {
				return nil, err
			}
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			d.Partition = col.text
			if _, err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		default:
			return nil, errAt(opt.pos, "unknown table option %q", opt.text)
		}
	}
	if len(d.Key) == 0 && len(d.Fields) > 0 {
		d.Key = []string{d.Fields[0].Name}
	}
	return d, nil
}

func (p *parser) varDecl() (*VarDecl, error) {
	kw := p.next() // "var"
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Pos: kw.pos, Name: name.text, Type: ty}
	if p.atPunct("=") {
		p.next()
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	return d, nil
}

func (p *parser) queryArg() (QueryArg, error) {
	t := p.cur()
	switch {
	case t.kind == tokIdent && t.text == "_":
		p.next()
		return QueryArg{Wildcard: true}, nil
	case t.kind == tokIdent && (t.text == "true" || t.text == "false"):
		p.next()
		return QueryArg{Const: &BoolLit{V: t.text == "true"}}, nil
	case t.kind == tokIdent:
		p.next()
		return QueryArg{Var: t.text}, nil
	case t.kind == tokInt:
		p.next()
		return QueryArg{Const: &IntLit{V: t.i}}, nil
	case t.kind == tokFloat:
		p.next()
		return QueryArg{Const: &FloatLit{V: t.f}}, nil
	case t.kind == tokString:
		p.next()
		return QueryArg{Const: &StringLit{V: t.s}}, nil
	}
	return QueryArg{}, errAt(t.pos, "expected query argument, found %s", t)
}

func (p *parser) queryArgs() ([]QueryArg, error) {
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []QueryArg
	for !p.atPunct(")") {
		a, err := p.queryArg()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.atPunct(",") {
			p.next()
		}
	}
	p.next()
	return args, nil
}

// bodyAtomOrFilter parses one conjunct: either a (possibly negated)
// predicate atom or a filter expression.
func (p *parser) bodyConjunct(atoms *[]BodyAtom, filters *[]Expr) error {
	t := p.cur()
	if p.atPunct("!") {
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		args, err := p.queryArgs()
		if err != nil {
			return err
		}
		*atoms = append(*atoms, BodyAtom{Pos: t.pos, Pred: name.text, Args: args, Negated: true})
		return nil
	}
	// An atom looks like ident( ; anything else is a filter expression.
	if t.kind == tokIdent && p.peek().kind == tokPunct && p.peek().text == "(" &&
		t.text != "true" && t.text != "false" {
		name := p.next()
		args, err := p.queryArgs()
		if err != nil {
			return err
		}
		*atoms = append(*atoms, BodyAtom{Pos: t.pos, Pred: name.text, Args: args})
		return nil
	}
	e, err := p.expr()
	if err != nil {
		return err
	}
	*filters = append(*filters, e)
	return nil
}

func (p *parser) ruleBody() ([]BodyAtom, []Expr, error) {
	var atoms []BodyAtom
	var filters []Expr
	for {
		if err := p.bodyConjunct(&atoms, &filters); err != nil {
			return nil, nil, err
		}
		if p.atPunct(",") {
			p.next()
			// allow line continuation after comma
			p.skipNewlines()
			continue
		}
		break
	}
	return atoms, filters, nil
}

func (p *parser) queryRule() (*QueryRule, error) {
	kw := p.next() // "query"
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	q := &QueryRule{Pos: kw.pos, Name: name.text}
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !p.atPunct(")") {
		// Aggregate head argument: count<v>, sum<v>, max<v>, min<v>.
		t := p.cur()
		if t.kind == tokIdent && (t.text == "count" || t.text == "sum" || t.text == "max" || t.text == "min") &&
			p.peek().kind == tokPunct && p.peek().text == "<" {
			agg := p.next().text
			p.next() // <
			v, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct(">"); err != nil {
				return nil, err
			}
			if q.Agg != "" {
				return nil, errAt(t.pos, "multiple aggregates in one query head")
			}
			q.Agg, q.AggVar = agg, v.text
			q.Head = append(q.Head, QueryArg{Var: v.text})
		} else {
			a, err := p.queryArg()
			if err != nil {
				return nil, err
			}
			q.Head = append(q.Head, a)
		}
		if p.atPunct(",") {
			p.next()
		}
	}
	p.next() // )
	if _, err := p.expectPunct(":-"); err != nil {
		return nil, err
	}
	p.skipNewlines()
	atoms, filters, err := p.ruleBody()
	if err != nil {
		return nil, err
	}
	q.Body, q.Filters = atoms, filters
	return q, nil
}

func (p *parser) udfDecl() (*UDFDecl, error) {
	kw := p.next() // "udf"
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	d := &UDFDecl{Pos: kw.pos, Name: name.text}
	for !p.atPunct(")") {
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		d.Params = append(d.Params, ty)
		if p.atPunct(",") {
			p.next()
		}
	}
	p.next()
	if _, err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	res, err := p.parseType()
	if err != nil {
		return nil, err
	}
	d.Result = res
	return d, nil
}

func (p *parser) handlerDecl() (*HandlerDecl, error) {
	kw := p.next() // "on"
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	params, err := p.fieldList(")")
	if err != nil {
		return nil, err
	}
	h := &HandlerDecl{Pos: kw.pos, Name: name.text, Params: params}
	for p.cur().kind == tokIdent {
		opt := p.next()
		switch opt.text {
		case "consistency":
			if _, err := p.expectPunct("("); err != nil {
				return nil, err
			}
			lvl, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			switch ConsistencyLevel(lvl.text) {
			case Eventual, Causal, Serializable:
				h.Consistency = ConsistencyLevel(lvl.text)
			default:
				return nil, errAt(lvl.pos, "unknown consistency level %q", lvl.text)
			}
			if _, err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		case "require":
			if _, err := p.expectPunct("("); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			h.Requires = append(h.Requires, e)
			if _, err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		default:
			return nil, errAt(opt.pos, "unknown handler option %q", opt.text)
		}
	}
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for {
		p.skipNewlines()
		if p.atPunct("}") {
			p.next()
			return h, nil
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		h.Body = append(h.Body, s)
	}
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return nil, errAt(t.pos, "expected statement, found %s", t)
	}
	switch t.text {
	case "merge":
		p.next()
		table, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if p.atPunct("[") {
			p.next()
			key, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("."); err != nil {
				return nil, err
			}
			field, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("<-"); err != nil {
				return nil, err
			}
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &MergeFieldStmt{At: t.pos, Table: table.text, Key: key, Field: field.text, Value: val}, nil
		}
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var args []Expr
		for !p.atPunct(")") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
			if p.atPunct(",") {
				p.next()
			}
		}
		p.next()
		return &MergeTupleStmt{At: t.pos, Table: table.text, Args: args}, nil
	case "send":
		p.next()
		box, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		args, err := p.queryArgs()
		if err != nil {
			return nil, err
		}
		s := &SendStmt{At: t.pos, Mailbox: box.text, Args: args}
		if p.atPunct(":-") {
			p.next()
			p.skipNewlines()
			atoms, filters, err := p.ruleBody()
			if err != nil {
				return nil, err
			}
			s.Body, s.Filters = atoms, filters
		}
		return s, nil
	case "delete":
		p.next()
		table, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var args []Expr
		for !p.atPunct(")") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
			if p.atPunct(",") {
				p.next()
			}
		}
		p.next()
		return &DeleteStmt{At: t.pos, Table: table.text, Args: args}, nil
	case "reply":
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ReplyStmt{At: t.pos, Value: e}, nil
	default:
		// Assignment: ident := expr
		if p.peek().kind == tokPunct && p.peek().text == ":=" {
			name := p.next()
			p.next() // :=
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{At: t.pos, Var: name.text, Value: e}, nil
		}
		return nil, errAt(t.pos, "unknown statement %q", t.text)
	}
}

func (p *parser) availBlock(prog *Program) error {
	p.next() // "availability"
	if _, err := p.expectPunct("{"); err != nil {
		return err
	}
	for {
		p.skipNewlines()
		if p.atPunct("}") {
			p.next()
			return nil
		}
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		spec := AvailSpec{}
		for p.cur().kind == tokIdent {
			key := p.next()
			if _, err := p.expectPunct("="); err != nil {
				return err
			}
			switch key.text {
			case "domain":
				v, err := p.expectIdent()
				if err != nil {
					return err
				}
				switch v.text {
				case "vm", "rack", "dc", "az":
					spec.Domain = v.text
				default:
					return errAt(v.pos, "unknown failure domain %q", v.text)
				}
			case "failures":
				v := p.cur()
				if v.kind != tokInt {
					return errAt(v.pos, "failures wants an integer")
				}
				p.next()
				spec.Failures = int(v.i)
			default:
				return errAt(key.pos, "unknown availability key %q", key.text)
			}
		}
		if _, dup := prog.Availability[name.text]; dup {
			return errAt(name.pos, "duplicate availability entry %q", name.text)
		}
		prog.Availability[name.text] = spec
	}
}

func (p *parser) targetBlock(prog *Program) error {
	p.next() // "target"
	if _, err := p.expectPunct("{"); err != nil {
		return err
	}
	for {
		p.skipNewlines()
		if p.atPunct("}") {
			p.next()
			return nil
		}
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		spec := TargetSpec{}
		for p.cur().kind == tokIdent {
			key := p.next()
			if _, err := p.expectPunct("="); err != nil {
				return err
			}
			v := p.cur()
			switch key.text {
			case "latency":
				if v.kind != tokDuration {
					return errAt(v.pos, "latency wants a duration like 100ms")
				}
				p.next()
				spec.LatencyMs = v.f
			case "cost":
				switch v.kind {
				case tokFloat:
					spec.Cost = v.f
				case tokInt:
					spec.Cost = float64(v.i)
				default:
					return errAt(v.pos, "cost wants a number")
				}
				p.next()
			case "processor":
				if v.kind != tokIdent || (v.text != "cpu" && v.text != "gpu") {
					return errAt(v.pos, "processor must be cpu or gpu")
				}
				p.next()
				spec.Processor = v.text
			default:
				return errAt(key.pos, "unknown target key %q", key.text)
			}
		}
		if _, dup := prog.Targets[name.text]; dup {
			return errAt(name.pos, "duplicate target entry %q", name.text)
		}
		prog.Targets[name.text] = spec
	}
}

// --- expressions (precedence climbing) ---

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
	"+": 4, "-": 4,
	"*": 5, "/": 5,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.next().text
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Op: op, L: lhs, R: rhs}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.next()
		return &IntLit{V: t.i}, nil
	case tokFloat:
		p.next()
		return &FloatLit{V: t.f}, nil
	case tokString:
		p.next()
		return &StringLit{V: t.s}, nil
	case tokIdent:
		switch t.text {
		case "true", "false":
			p.next()
			return &BoolLit{V: t.text == "true"}, nil
		}
		name := p.next()
		// UDF call: ident(...)
		if p.atPunct("(") {
			p.next()
			var args []Expr
			for !p.atPunct(")") {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, e)
				if p.atPunct(",") {
					p.next()
				}
			}
			p.next()
			return &CallExpr{Func: name.text, Args: args}, nil
		}
		// Field ref: ident[expr].field
		if p.atPunct("[") {
			p.next()
			key, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("."); err != nil {
				return nil, err
			}
			field, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &FieldRef{Table: name.text, Key: key, Field: field.text}, nil
		}
		return &VarRef{Name: name.text}, nil
	case tokPunct:
		if t.text == "(" {
			p.next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "-" {
			p.next()
			e, err := p.primary()
			if err != nil {
				return nil, err
			}
			return &BinExpr{Op: "-", L: &IntLit{V: 0}, R: e}, nil
		}
	}
	return nil, errAt(t.pos, "expected expression, found %s", t)
}
