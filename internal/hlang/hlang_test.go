package hlang

import (
	"strings"
	"testing"
)

func TestParseCovid(t *testing.T) {
	p, err := Parse(CovidSource)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tables) != 2 || len(p.Handlers) != 6 {
		t.Fatalf("tables=%d handlers=%d", len(p.Tables), len(p.Handlers))
	}
	people := p.Table("people")
	if people == nil || people.Arity() != 4 {
		t.Fatal("people table wrong")
	}
	if people.Partition != "country" || len(people.Key) != 1 || people.Key[0] != "pid" {
		t.Fatalf("people key/partition = %v/%q", people.Key, people.Partition)
	}
	contacts := p.Table("contacts")
	if len(contacts.Key) != 2 {
		t.Fatalf("contacts key = %v", contacts.Key)
	}
	if len(p.Queries) != 2 || p.Queries[0].Name != "transitive" {
		t.Fatalf("queries = %v", p.QueryNames())
	}
	v := p.Var("vaccine_count")
	if v == nil || v.Init == nil {
		t.Fatal("vaccine_count missing or uninitialized")
	}
	if p.Handler("vaccinate").Consistency != Serializable {
		t.Fatal("vaccinate consistency not parsed")
	}
	if len(p.Handler("vaccinate").Requires) != 1 {
		t.Fatal("vaccinate invariant not parsed")
	}
	if p.UDF("covid_predict") == nil {
		t.Fatal("udf not parsed")
	}
}

func TestFacetResolution(t *testing.T) {
	p, err := Parse(CovidSource)
	if err != nil {
		t.Fatal(err)
	}
	def := p.AvailabilityFor("add_person")
	if def.Domain != "az" || def.Failures != 2 {
		t.Fatalf("default availability = %+v", def)
	}
	lk := p.AvailabilityFor("likelihood")
	if lk.Failures != 1 {
		t.Fatalf("likelihood override = %+v", lk)
	}
	tgt := p.TargetFor("likelihood")
	if tgt.Processor != "gpu" || tgt.Cost != 0.1 {
		t.Fatalf("likelihood target = %+v", tgt)
	}
	if p.TargetFor("add_person").LatencyMs != 100 {
		t.Fatalf("default latency = %v", p.TargetFor("add_person").LatencyMs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSubstr string
	}{
		{"unknown decl", "frobnicate x", "unknown declaration"},
		{"bad type", "table t(a: blob)", "unknown type"},
		{"unterminated string", `var s: string = "oops`, "unterminated"},
		{"bad char", "table t(a: int) $", "unexpected character"},
		{"dup table", "table t(a: int)\ntable t(b: int)", "redeclared"},
		{"dup column", "table t(a: int, a: int)", "duplicate column"},
		{"bad key", "table t(a: int) key(zz)", `key column "zz"`},
		{"bad partition", "table t(a: int) partition(zz)", `partition column "zz"`},
		{"unknown pred", "query q(x) :- nothere(x)", "unknown predicate"},
		{"arity", "table t(a: int, b: int)\nquery q(x) :- t(x)", "wants 2 args"},
		{"neg only var", "table t(a: int)\nquery q(x) :- t(x), !t(y)", "only under negation"},
		{"unbound head", "table t(a: int)\nquery q(x, y) :- t(x)", "not bound in body"},
		{"unknown consistency", "on h(x: int) consistency(fuzzy) { reply 1 }", "unknown consistency"},
		{"unknown table merge", "on h(x: int) { merge nope(x) }", "unknown table"},
		{"merge arity", "table t(a: int, b: int)\non h(x: int) { merge t(x) }", "wants 2 columns"},
		{"non-lattice field merge", "table t(a: int, b: string)\non h(x: int) { merge t[x].b <- \"v\" }", "non-lattice"},
		{"assign undeclared", "on h(x: int) { y := 1 }", "undeclared var"},
		{"unknown udf", "on h(x: int) { reply f(x) }", "unknown UDF"},
		{"udf arity", "udf f(int) : int\non h(x: int) { reply f(x, x) }", "wants 1 args"},
		{"bad avail domain", "on h(x: int) { reply 1 }\navailability { h domain=moon failures=1 }", "unknown failure domain"},
		{"avail unknown handler", "availability { nope domain=az failures=1 }", `unknown handler "nope"`},
		{"target unknown handler", "target { nope cost=1 }", `unknown handler "nope"`},
		{"latency not duration", "on h(x: int) { reply 1 }\ntarget { h latency=5 }", "duration"},
		{"unstratifiable", "table t(a: int)\nquery p(x) :- t(x), !q(x)\nquery q(x) :- t(x), !p(x)", "not stratifiable"},
		{"query clashes table", "table t(a: int)\nquery t(x) :- t(x)", "clashes with a table"},
		{"send unbound", "table t(a: int)\non h(x: int) { send out(z) :- t(x) }", "not bound"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.wantSubstr)
			}
			if !strings.Contains(err.Error(), c.wantSubstr) {
				t.Fatalf("error %q does not contain %q", err, c.wantSubstr)
			}
		})
	}
}

func TestExprPrecedence(t *testing.T) {
	src := "var x: int\non h(a: int) { x := 1 + 2 * 3 - 4 / 2 }"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	got := p.Handler("h").Body[0].(*AssignStmt).Value.String()
	want := "((1 + (2 * 3)) - (4 / 2))"
	if got != want {
		t.Fatalf("parsed %s, want %s", got, want)
	}
}

func TestExprUnaryMinusAndParens(t *testing.T) {
	src := "var x: int\non h(a: int) { x := -(a + 1) * 2 }"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	got := p.Handler("h").Body[0].(*AssignStmt).Value.String()
	want := "((0 - (a + 1)) * 2)"
	if got != want {
		t.Fatalf("parsed %s, want %s", got, want)
	}
}

func TestAggregateQueryParse(t *testing.T) {
	src := `
table sale(region: string, amt: int)
query total(region, sum<amt>) :- sale(region, amt)
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q := p.Queries[0]
	if q.Agg != "sum" || q.AggVar != "amt" || len(q.Head) != 2 {
		t.Fatalf("agg parse: %+v", q)
	}
}

func TestDurationLexing(t *testing.T) {
	src := "on h(x: int) { reply 1 }\ntarget { h latency=2s cost=3 }"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.TargetFor("h").LatencyMs != 2000 {
		t.Fatalf("2s = %v ms", p.TargetFor("h").LatencyMs)
	}
}

func TestStmtStrings(t *testing.T) {
	p, err := Parse(CovidSource)
	if err != nil {
		t.Fatal(err)
	}
	d := p.Handler("diagnosed")
	if got := d.Body[0].String(); got != "merge people[pid].covid <- true" {
		t.Fatalf("MergeFieldStmt.String = %q", got)
	}
	if got := d.Body[1].String(); !strings.Contains(got, "send alert(p) :- transitive(pid, p)") {
		t.Fatalf("SendStmt.String = %q", got)
	}
}

// --- Monotonicity typechecker (experiment E11 lives in the corpus test) ---

func TestAnalyzeCovid(t *testing.T) {
	p, err := Parse(CovidSource)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(p)
	if a.Queries["transitive"].Mono != Monotone {
		t.Fatalf("transitive closure must be monotone: %v", a.Queries["transitive"].Reasons)
	}
	for _, name := range []string{"add_person", "add_contact", "diagnosed", "trace", "likelihood"} {
		if a.Handlers[name].Mono != Monotone {
			t.Fatalf("%s should be monotone: %v", name, a.Handlers[name].Reasons)
		}
	}
	v := a.Handlers["vaccinate"]
	if v.Mono != NonMonotone {
		t.Fatal("vaccinate must be non-monotone (bare assignment)")
	}
	if len(v.WritesVars) != 1 || v.WritesVars[0] != "vaccine_count" {
		t.Fatalf("vaccinate writes = %v", v.WritesVars)
	}
	// §7's key observation: vaccinate is the only handler touching
	// vaccine_count, so serializability localizes to it.
	for name, h := range a.Handlers {
		if name == "vaccinate" {
			continue
		}
		for _, w := range append(h.WritesVars, h.ReadsVars...) {
			if w == "vaccine_count" {
				t.Fatalf("%s unexpectedly touches vaccine_count", name)
			}
		}
	}
	cps := a.CoordinationPoints(p)
	if len(cps) != 1 || cps[0] != "vaccinate" {
		t.Fatalf("coordination points = %v, want [vaccinate]", cps)
	}
}

// TestE11MonotonicityCorpus is experiment E11: Fig 4 shows manual
// monotonicity review going wrong on Twitter; here a corpus of subtly
// monotone/non-monotone programs is classified mechanically.
func TestE11MonotonicityCorpus(t *testing.T) {
	corpus := []struct {
		name string
		src  string
		want map[string]Monotonicity // handler or query name → expected
	}{
		{
			name: "grow-only set union",
			src: `
table seen(id: int)
on add(id: int) { merge seen(id) }`,
			want: map[string]Monotonicity{"add": Monotone},
		},
		{
			name: "counter overwrite looks innocent but is not",
			src: `
var count: int = 0
on bump(x: int) { count := count + 1 }`,
			want: map[string]Monotonicity{"bump": NonMonotone},
		},
		{
			name: "negation hidden two queries deep",
			src: `
table node(id: int)
table edge(a: int, b: int)
query reached(x) :- edge(1, x)
query isolated(x) :- node(x), !reached(x)
query report(x) :- isolated(x)
on audit(x: int) { send out(y) :- report(y) }`,
			want: map[string]Monotonicity{
				"reached":  Monotone,
				"isolated": NonMonotone,
				"report":   NonMonotone, // inherited, the subtle case
				"audit":    NonMonotone,
			},
		},
		{
			name: "aggregate read as value",
			src: `
table votes(voter: int, choice: string)
query tally(choice, count<voter>) :- votes(voter, choice)
on winner(x: int) { send out(c, n) :- tally(c, n) }`,
			want: map[string]Monotonicity{"tally": NonMonotone, "winner": NonMonotone},
		},
		{
			name: "delete disguised as cleanup",
			src: `
table sessions(id: int)
on expire(id: int) { delete sessions(id) }`,
			want: map[string]Monotonicity{"expire": NonMonotone},
		},
		{
			name: "lattice field merge stays monotone",
			src: `
table acct(id: int, flagged: bool, score: max<int>) key(id)
on flag(id: int) { merge acct[id].flagged <- true }
on bump(id: int, s: int) { merge acct[id].score <- s }`,
			want: map[string]Monotonicity{"flag": Monotone, "bump": Monotone},
		},
		{
			name: "recursive positive query is monotone despite cycles",
			src: `
table edge(a: int, b: int)
query tc(x, y) :- edge(x, y)
query tc(x, z) :- tc(x, y), edge(y, z)
on probe(x: int) { send out(y) :- tc(x, y) }`,
			want: map[string]Monotonicity{"tc": Monotone, "probe": Monotone},
		},
	}
	for _, c := range corpus {
		t.Run(c.name, func(t *testing.T) {
			p, err := Parse(c.src)
			if err != nil {
				t.Fatal(err)
			}
			a := Analyze(p)
			for name, want := range c.want {
				var got Monotonicity
				if q, ok := a.Queries[name]; ok {
					got = q.Mono
				} else if h, ok := a.Handlers[name]; ok {
					got = h.Mono
				} else {
					t.Fatalf("no analysis result for %q", name)
				}
				if got != want {
					t.Errorf("%s: classified %v, want %v", name, got, want)
				}
			}
		})
	}
}

func TestAnalysisReport(t *testing.T) {
	p, err := Parse(CovidSource)
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(p).Report()
	if !strings.Contains(rep, "vaccinate") || !strings.Contains(rep, "non-monotone") {
		t.Fatalf("report missing content:\n%s", rep)
	}
	if !strings.Contains(rep, "transitive") {
		t.Fatalf("report missing queries:\n%s", rep)
	}
}

func TestSendDataflowTracked(t *testing.T) {
	p, err := Parse(CovidSource)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(p)
	d := a.Handlers["diagnosed"]
	found := false
	for _, m := range d.SendsTo {
		if m == "alert" {
			found = true
		}
	}
	if !found {
		t.Fatalf("diagnosed sends = %v, want alert", d.SendsTo)
	}
}
