package lattice

// This file provides monotone functions between lattices ("morphisms").
// §8 of the paper wants lattice values to pipeline through flows the same
// way collections do — e.g. a COUNT over a growing set yields a growing Max
// counter. A monotone map guarantees that pushing deltas through the
// function never retracts earlier outputs, which is what makes
// coordination-free streaming of lattice state sound.

// Morphism is a function from lattice S to lattice T together with a
// declared monotonicity. IsMonotone=true asserts x ≤ y ⇒ F(x) ≤ F(y);
// CheckMonotone spot-checks the assertion on samples.
type Morphism[S Value[S], T Value[T]] struct {
	Name       string
	F          func(S) T
	IsMonotone bool
}

// Apply evaluates the morphism.
func (m Morphism[S, T]) Apply(s S) T { return m.F(s) }

// CheckMonotone verifies x ≤ y ⇒ F(x) ≤ F(y) over all ordered sample pairs.
// It returns false on the first counterexample.
func CheckMonotone[S Value[S], T Value[T]](m Morphism[S, T], samples []S) bool {
	for _, x := range samples {
		for _, y := range samples {
			if x.LessEq(y) && !m.F(x).LessEq(m.F(y)) {
				return false
			}
		}
	}
	return true
}

// Count is the monotone morphism from a set to its cardinality as a Max
// lattice — the paper's canonical example of lattice pipelining (§8.1).
func Count[E comparable]() Morphism[Set[E], Max[int]] {
	return Morphism[Set[E], Max[int]]{
		Name:       "count",
		IsMonotone: true,
		F:          func(s Set[E]) Max[int] { return NewMax(s.Len()) },
	}
}

// Exists is the monotone morphism from a set to "is non-empty" in the
// or-lattice.
func Exists[E comparable]() Morphism[Set[E], Bool] {
	return Morphism[Set[E], Bool]{
		Name:       "exists",
		IsMonotone: true,
		F:          func(s Set[E]) Bool { return Bool{V: s.Len() > 0} },
	}
}

// Threshold converts a Max counter into a boolean gate at limit: the output
// flips to true once the counter passes the threshold and never unflips.
// Threshold gates are how monotone programs make decisions without
// coordination (e.g. "all acount agents have responded" in the MPI gather).
func Threshold(limit int) Morphism[Max[int], Bool] {
	return Morphism[Max[int], Bool]{
		Name:       "threshold",
		IsMonotone: true,
		F:          func(m Max[int]) Bool { return Bool{V: m.V >= limit} },
	}
}

// MapSet lifts an element function over a set: the image of a grow-only set
// is grow-only, so MapSet is monotone for any f.
func MapSet[A, B comparable](name string, f func(A) B) Morphism[Set[A], Set[B]] {
	return Morphism[Set[A], Set[B]]{
		Name:       name,
		IsMonotone: true,
		F: func(s Set[A]) Set[B] {
			out := NewSet[B]()
			for _, a := range s.Elems() {
				out = out.Add(f(a))
			}
			return out
		},
	}
}

// FilterSet restricts a set by a predicate; selection over a grow-only set
// is monotone.
func FilterSet[A comparable](name string, pred func(A) bool) Morphism[Set[A], Set[A]] {
	return Morphism[Set[A], Set[A]]{
		Name:       name,
		IsMonotone: true,
		F: func(s Set[A]) Set[A] {
			out := NewSet[A]()
			for _, a := range s.Elems() {
				if pred(a) {
					out = out.Add(a)
				}
			}
			return out
		},
	}
}

// Compose chains two morphisms; the composition is monotone iff both are.
func Compose[S Value[S], T Value[T], U Value[U]](f Morphism[S, T], g Morphism[T, U]) Morphism[S, U] {
	return Morphism[S, U]{
		Name:       f.Name + "∘" + g.Name,
		IsMonotone: f.IsMonotone && g.IsMonotone,
		F:          func(s S) U { return g.F(f.F(s)) },
	}
}
