// Package lattice implements the join-semilattice algebra at the heart of
// the Hydro stack (CIDR '21, §1.2 and §8). A join-semilattice is a set with
// a binary merge (least upper bound) that is associative, commutative and
// idempotent — the "ACI" properties of ACID 2.0. Monotone programs over
// lattices produce deterministic outcomes without coordination (the CALM
// theorem), which is what the consistency facet exploits.
//
// The central abstraction is Value[T], a self-referential generic interface:
// each lattice type merges with and compares against its own type. All
// lattice values in this package are immutable: Merge returns a new value.
package lattice

// Value is a join-semilattice element. Implementations must satisfy the
// semilattice laws, checked by CheckLaws and the property tests:
//
//	Merge(a, Merge(b, c)) == Merge(Merge(a, b), c)   (associativity)
//	Merge(a, b) == Merge(b, a)                       (commutativity)
//	Merge(a, a) == a                                 (idempotence)
//
// LessEq is the induced partial order: a ≤ b iff Merge(a, b) == b.
type Value[T any] interface {
	// Merge returns the least upper bound of the receiver and other.
	Merge(other T) T
	// LessEq reports whether the receiver precedes other in the lattice
	// partial order.
	LessEq(other T) bool
	// Equal reports semantic equality of two lattice values.
	Equal(other T) bool
}

// Merge is the free function form of Value.Merge, convenient for folds.
func Merge[T Value[T]](a, b T) T { return a.Merge(b) }

// Join folds any number of values into their least upper bound, starting
// from bottom.
func Join[T Value[T]](bottom T, vs ...T) T {
	acc := bottom
	for _, v := range vs {
		acc = acc.Merge(v)
	}
	return acc
}

// Comparable reports how two lattice elements relate: a < b, a == b, a > b,
// or incomparable.
type Ordering int

// Orderings returned by Compare.
const (
	Less Ordering = iota
	Equal
	Greater
	Incomparable
)

func (o Ordering) String() string {
	switch o {
	case Less:
		return "less"
	case Equal:
		return "equal"
	case Greater:
		return "greater"
	default:
		return "incomparable"
	}
}

// Compare classifies the relationship between a and b under the lattice
// partial order.
func Compare[T Value[T]](a, b T) Ordering {
	le, ge := a.LessEq(b), b.LessEq(a)
	switch {
	case le && ge:
		return Equal
	case le:
		return Less
	case ge:
		return Greater
	default:
		return Incomparable
	}
}

// LawViolation describes a broken semilattice law, for CheckLaws.
type LawViolation struct {
	Law    string // "associativity", "commutativity", "idempotence", "order"
	Detail string
}

func (v *LawViolation) Error() string { return "lattice law violated: " + v.Law + ": " + v.Detail }

// CheckLaws exercises the ACI laws plus order/merge coherence on a sample of
// values. It returns the first violation found, or nil. Property tests feed
// it with testing/quick-generated samples.
func CheckLaws[T Value[T]](samples []T) error {
	for _, a := range samples {
		if !a.Merge(a).Equal(a) {
			return &LawViolation{Law: "idempotence", Detail: "a⊔a != a"}
		}
		for _, b := range samples {
			ab, ba := a.Merge(b), b.Merge(a)
			if !ab.Equal(ba) {
				return &LawViolation{Law: "commutativity", Detail: "a⊔b != b⊔a"}
			}
			// Merge must be an upper bound of both arguments.
			if !a.LessEq(ab) || !b.LessEq(ab) {
				return &LawViolation{Law: "order", Detail: "a,b not ≤ a⊔b"}
			}
			// a ≤ b must coincide with a⊔b == b.
			if a.LessEq(b) != ab.Equal(b) {
				return &LawViolation{Law: "order", Detail: "LessEq inconsistent with Merge"}
			}
			for _, c := range samples {
				if !a.Merge(b.Merge(c)).Equal(ab.Merge(c)) {
					return &LawViolation{Law: "associativity", Detail: "a⊔(b⊔c) != (a⊔b)⊔c"}
				}
			}
		}
	}
	return nil
}
