package lattice

// Pair is the product lattice: two lattices merged componentwise. Products
// of lattices are lattices, which is how Bloom-L builds compound monotone
// state (e.g. a (vector clock, value) pair).
type Pair[A Value[A], B Value[B]] struct {
	First  A
	Second B
}

// NewPair returns the product element (a, b).
func NewPair[A Value[A], B Value[B]](a A, b B) Pair[A, B] {
	return Pair[A, B]{First: a, Second: b}
}

// Merge merges componentwise.
func (p Pair[A, B]) Merge(o Pair[A, B]) Pair[A, B] {
	return Pair[A, B]{First: p.First.Merge(o.First), Second: p.Second.Merge(o.Second)}
}

// LessEq is the product order.
func (p Pair[A, B]) LessEq(o Pair[A, B]) bool {
	return p.First.LessEq(o.First) && p.Second.LessEq(o.Second)
}

// Equal reports componentwise equality.
func (p Pair[A, B]) Equal(o Pair[A, B]) bool {
	return p.First.Equal(o.First) && p.Second.Equal(o.Second)
}

// DomPair is the *dominating pair* lattice: the first component is a clock
// that dominates the second. On merge, if one clock strictly dominates, its
// payload wins wholesale; if the clocks are concurrent, both components
// merge. This is the building block of causal registers (Hydrocache-style
// lattice encapsulation, §7.2).
//
// Precondition: DomPair satisfies the lattice laws only when the payload is
// a monotone function of the clock — larger clocks carry larger payloads.
// Causal registers maintain this invariant by construction: every write
// advances the writer's clock component and the payload summarizes all
// writes the clock has observed.
type DomPair[A Value[A], B Value[B]] struct {
	Clock A
	Val   B
}

// NewDomPair returns the dominating pair (clock, val).
func NewDomPair[A Value[A], B Value[B]](clock A, val B) DomPair[A, B] {
	return DomPair[A, B]{Clock: clock, Val: val}
}

// Merge implements dominance: strictly larger clocks replace the payload;
// concurrent clocks merge both components.
func (d DomPair[A, B]) Merge(o DomPair[A, B]) DomPair[A, B] {
	dLE, oLE := d.Clock.LessEq(o.Clock), o.Clock.LessEq(d.Clock)
	switch {
	case dLE && !oLE: // o strictly dominates
		return o
	case oLE && !dLE: // d strictly dominates
		return d
	case dLE && oLE: // equal clocks: merge payloads
		return DomPair[A, B]{Clock: d.Clock, Val: d.Val.Merge(o.Val)}
	default: // concurrent: merge everything
		return DomPair[A, B]{Clock: d.Clock.Merge(o.Clock), Val: d.Val.Merge(o.Val)}
	}
}

// LessEq holds when the merge with o equals o.
func (d DomPair[A, B]) LessEq(o DomPair[A, B]) bool { return d.Merge(o).Equal(o) }

// Equal reports componentwise equality.
func (d DomPair[A, B]) Equal(o DomPair[A, B]) bool {
	return d.Clock.Equal(o.Clock) && d.Val.Equal(o.Val)
}

// VClock is a vector clock: a map from replica ID to a Max counter. It is a
// keyed lattice specialized for causality tracking.
type VClock struct {
	inner Map[string, Max[uint64]]
}

// NewVClock returns the empty (bottom) vector clock.
func NewVClock() VClock { return VClock{inner: NewMap[string, Max[uint64]]()} }

// Tick returns a clock with replica's component advanced to at least n.
func (v VClock) Tick(replica string, n uint64) VClock {
	return VClock{inner: v.inner.Put(replica, NewMax(n))}
}

// Advance returns a clock with replica's component incremented by one.
func (v VClock) Advance(replica string) VClock {
	cur, _ := v.inner.Get(replica)
	return v.Tick(replica, cur.V+1)
}

// At returns replica's component (zero if absent).
func (v VClock) At(replica string) uint64 {
	c, _ := v.inner.Get(replica)
	return c.V
}

// Merge takes the pointwise maximum.
func (v VClock) Merge(o VClock) VClock { return VClock{inner: v.inner.Merge(o.inner)} }

// LessEq reports causal precedence (≤ in every component).
func (v VClock) LessEq(o VClock) bool { return v.inner.LessEq(o.inner) }

// Equal reports componentwise equality.
func (v VClock) Equal(o VClock) bool { return v.inner.Equal(o.inner) }

// Concurrent reports that neither clock precedes the other.
func (v VClock) Concurrent(o VClock) bool { return !v.LessEq(o) && !o.LessEq(v) }

// LWW is the last-writer-wins register lattice, ordered by (timestamp, tie)
// with a deterministic tiebreak so that merge stays commutative even for
// concurrent writes at the same timestamp.
type LWW[E any] struct {
	Stamp uint64
	Tie   string // writer ID used to break timestamp ties deterministically
	Val   E
	eq    func(a, b E) bool
}

// NewLWW returns an LWW register. eq compares payloads for Equal; it may be
// nil for payload types where staleness alone defines equality.
func NewLWW[E any](stamp uint64, tie string, val E, eq func(a, b E) bool) LWW[E] {
	return LWW[E]{Stamp: stamp, Tie: tie, Val: val, eq: eq}
}

func (l LWW[E]) dominates(o LWW[E]) bool {
	if l.Stamp != o.Stamp {
		return l.Stamp > o.Stamp
	}
	return l.Tie >= o.Tie
}

// Merge keeps the write with the larger (stamp, tie) pair.
func (l LWW[E]) Merge(o LWW[E]) LWW[E] {
	if l.dominates(o) {
		return l
	}
	return o
}

// LessEq reports that o's write dominates or equals l's.
func (l LWW[E]) LessEq(o LWW[E]) bool { return o.dominates(l) }

// Equal reports equal stamp and tiebreak (and payload when eq is provided).
func (l LWW[E]) Equal(o LWW[E]) bool {
	if l.Stamp != o.Stamp || l.Tie != o.Tie {
		return false
	}
	if l.eq != nil {
		return l.eq(l.Val, o.Val)
	}
	return true
}
