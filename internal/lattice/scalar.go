package lattice

import "cmp"

// Max is the lattice of ordered values under maximum. The zero value is the
// bottom of the lattice for unsigned types; use NewMax to set an initial
// element explicitly.
type Max[E cmp.Ordered] struct{ V E }

// NewMax returns a Max lattice element holding v.
func NewMax[E cmp.Ordered](v E) Max[E] { return Max[E]{V: v} }

// Merge returns the greater of the two values.
func (m Max[E]) Merge(o Max[E]) Max[E] { return Max[E]{V: max(m.V, o.V)} }

// LessEq reports m.V <= o.V.
func (m Max[E]) LessEq(o Max[E]) bool { return m.V <= o.V }

// Equal reports value equality.
func (m Max[E]) Equal(o Max[E]) bool { return m.V == o.V }

// Min is the lattice of ordered values under minimum (the dual of Max).
type Min[E cmp.Ordered] struct{ V E }

// NewMin returns a Min lattice element holding v.
func NewMin[E cmp.Ordered](v E) Min[E] { return Min[E]{V: v} }

// Merge returns the smaller of the two values.
func (m Min[E]) Merge(o Min[E]) Min[E] { return Min[E]{V: min(m.V, o.V)} }

// LessEq reports m.V >= o.V: smaller values are *later* in the Min lattice.
func (m Min[E]) LessEq(o Min[E]) bool { return m.V >= o.V }

// Equal reports value equality.
func (m Min[E]) Equal(o Min[E]) bool { return m.V == o.V }

// Bool is the boolean or-lattice: false ⊑ true. It models one-way "flag"
// state such as Person.covid in the running example — once true, always
// true, hence monotonic.
type Bool struct{ V bool }

// True and False are the two elements of the Bool lattice.
var (
	True  = Bool{V: true}
	False = Bool{V: false}
)

// Merge returns logical or.
func (b Bool) Merge(o Bool) Bool { return Bool{V: b.V || o.V} }

// LessEq reports b implies o (false ⊑ true).
func (b Bool) LessEq(o Bool) bool { return !b.V || o.V }

// Equal reports value equality.
func (b Bool) Equal(o Bool) bool { return b.V == o.V }

// BoolAnd is the boolean and-lattice: true ⊑ false. Useful for "all replicas
// agree" conjunctions.
type BoolAnd struct{ V bool }

// Merge returns logical and.
func (b BoolAnd) Merge(o BoolAnd) BoolAnd { return BoolAnd{V: b.V && o.V} }

// LessEq reports o implies b (true ⊑ false).
func (b BoolAnd) LessEq(o BoolAnd) bool { return b.V || !o.V }

// Equal reports value equality.
func (b BoolAnd) Equal(o BoolAnd) bool { return b.V == o.V }
