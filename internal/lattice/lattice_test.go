package lattice

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxMerge(t *testing.T) {
	a, b := NewMax(3), NewMax(7)
	if got := a.Merge(b); got.V != 7 {
		t.Fatalf("Merge(3,7) = %d, want 7", got.V)
	}
	if !a.LessEq(b) || b.LessEq(a) {
		t.Fatal("order of Max(3), Max(7) wrong")
	}
}

func TestMinMerge(t *testing.T) {
	a, b := NewMin(3), NewMin(7)
	if got := a.Merge(b); got.V != 3 {
		t.Fatalf("Merge(3,7) = %d, want 3", got.V)
	}
	if !b.LessEq(a) || a.LessEq(b) {
		t.Fatal("order of Min lattice wrong: larger values are earlier")
	}
}

func TestBoolLattice(t *testing.T) {
	if got := False.Merge(True); !got.V {
		t.Fatal("false ⊔ true should be true")
	}
	if !False.LessEq(True) || True.LessEq(False) {
		t.Fatal("Bool order wrong")
	}
	if v := (BoolAnd{V: true}).Merge(BoolAnd{V: false}); v.V {
		t.Fatal("BoolAnd true ⊔ false should be false")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Set[int]
		want Ordering
	}{
		{NewSet(1), NewSet(1, 2), Less},
		{NewSet(1, 2), NewSet(1), Greater},
		{NewSet(1, 2), NewSet(1, 2), Equal},
		{NewSet(1), NewSet(2), Incomparable},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSetOps(t *testing.T) {
	s := NewSet(1, 2, 3)
	if s.Len() != 3 || !s.Contains(2) || s.Contains(9) {
		t.Fatal("basic set ops broken")
	}
	s2 := s.Add(4)
	if s.Contains(4) {
		t.Fatal("Add mutated the receiver; sets must be immutable")
	}
	if !s2.Contains(4) || s2.Len() != 4 {
		t.Fatal("Add did not include the new element")
	}
	if s.Add(2).Len() != 3 {
		t.Fatal("adding an existing element changed cardinality")
	}
	if s.String() != "{1, 2, 3}" {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestMapLattice(t *testing.T) {
	m := NewMap[string, Max[int]]().Put("a", NewMax(1)).Put("b", NewMax(5))
	m2 := NewMap[string, Max[int]]().Put("a", NewMax(3))
	got := m.Merge(m2)
	if v, _ := got.Get("a"); v.V != 3 {
		t.Fatalf("pointwise merge at a = %d, want 3", v.V)
	}
	if v, _ := got.Get("b"); v.V != 5 {
		t.Fatalf("pointwise merge at b = %d, want 5", v.V)
	}
	if !m2.LessEq(got) || !m.LessEq(got) {
		t.Fatal("merge must dominate both inputs")
	}
	if got.Len() != 2 {
		t.Fatalf("Len = %d, want 2", got.Len())
	}
}

func TestVClock(t *testing.T) {
	a := NewVClock().Advance("r1").Advance("r1") // r1:2
	b := NewVClock().Advance("r2")               // r2:1
	if !a.Concurrent(b) {
		t.Fatal("disjoint clocks must be concurrent")
	}
	m := a.Merge(b)
	if m.At("r1") != 2 || m.At("r2") != 1 {
		t.Fatalf("merged clock = r1:%d r2:%d", m.At("r1"), m.At("r2"))
	}
	if !a.LessEq(m) || !b.LessEq(m) || m.LessEq(a) {
		t.Fatal("merge ordering wrong")
	}
}

func TestLWW(t *testing.T) {
	w1 := NewLWW(10, "a", "x", func(a, b string) bool { return a == b })
	w2 := NewLWW(20, "b", "y", func(a, b string) bool { return a == b })
	if got := w1.Merge(w2); got.Val != "y" {
		t.Fatalf("later write should win, got %q", got.Val)
	}
	// Timestamp tie: deterministic by writer ID regardless of merge order.
	t1 := NewLWW(5, "a", "p", nil)
	t2 := NewLWW(5, "b", "q", nil)
	if t1.Merge(t2).Val != t2.Merge(t1).Val {
		t.Fatal("tie-broken merge is not commutative")
	}
	if t1.Merge(t2).Val != "q" {
		t.Fatal("tiebreak should pick larger writer ID")
	}
}

func TestDomPair(t *testing.T) {
	c1 := NewVClock().Advance("r1")
	c2 := c1.Advance("r1") // strictly after c1
	older := NewDomPair(c1, NewSet("old"))
	newer := NewDomPair(c2, NewSet("new"))
	got := older.Merge(newer)
	if !got.Val.Equal(NewSet("new")) {
		t.Fatalf("dominating clock must replace payload, got %v", got.Val)
	}
	// Concurrent clocks: payloads merge.
	cc := NewVClock().Advance("r2")
	conc := NewDomPair(cc, NewSet("side"))
	both := newer.Merge(conc)
	if !both.Val.Contains("new") || !both.Val.Contains("side") {
		t.Fatalf("concurrent merge should union payloads, got %v", both.Val)
	}
}

func TestJoinFold(t *testing.T) {
	got := Join(NewSet[int](), NewSet(1), NewSet(2), NewSet(3))
	if got.Len() != 3 {
		t.Fatalf("Join of three singletons has %d elems", got.Len())
	}
}

// --- Property-based law checks (testing/quick) ---

func randomSets(r *rand.Rand, n int) []Set[int] {
	out := make([]Set[int], n)
	for i := range out {
		s := NewSet[int]()
		for j := 0; j < r.Intn(6); j++ {
			s = s.Add(r.Intn(8))
		}
		out[i] = s
	}
	return out
}

func TestSetLawsQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		return CheckLaws(randomSets(r, 5)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxLawsQuick(t *testing.T) {
	f := func(a, b, c int) bool {
		return CheckLaws([]Max[int]{NewMax(a), NewMax(b), NewMax(c)}) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinLawsQuick(t *testing.T) {
	f := func(a, b, c int) bool {
		return CheckLaws([]Min[int]{NewMin(a), NewMin(b), NewMin(c)}) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVClockLawsQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		replicas := []string{"r1", "r2", "r3"}
		mk := func() VClock {
			v := NewVClock()
			for i := 0; i < r.Intn(5); i++ {
				v = v.Advance(replicas[r.Intn(len(replicas))])
			}
			return v
		}
		return CheckLaws([]VClock{mk(), mk(), mk()}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLWWLawsQuick(t *testing.T) {
	f := func(s1, s2, s3 uint64, t1, t2, t3 uint8) bool {
		ties := []string{"a", "b", "c", "d"}
		// The payload must be a function of (stamp, tie) for LWW to be a
		// lattice — same writer at the same instant writes the same value.
		mk := func(s uint64, ti uint8) LWW[int] {
			stamp, tie := s%8, int(ti)%len(ties)
			return NewLWW(stamp, ties[tie], int(stamp)*10+tie, func(a, b int) bool { return a == b })
		}
		return CheckLaws([]LWW[int]{mk(s1, t1), mk(s2, t2), mk(s3, t3)}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDomPairLawsQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		replicas := []string{"r1", "r2"}
		// DomPair is a lattice only when the payload is a monotone
		// function of the clock (the causal-register invariant), so
		// derive the payload as the set of dots the clock dominates.
		mk := func() DomPair[VClock, Set[string]] {
			v := NewVClock()
			for i := 0; i < r.Intn(4); i++ {
				v = v.Advance(replicas[r.Intn(2)])
			}
			s := NewSet[string]()
			for _, rep := range replicas {
				for i := uint64(1); i <= v.At(rep); i++ {
					s = s.Add(fmt.Sprintf("%s:%d", rep, i))
				}
			}
			return NewDomPair(v, s)
		}
		return CheckLaws([]DomPair[VClock, Set[string]]{mk(), mk(), mk()}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPairLawsQuick(t *testing.T) {
	f := func(a1, a2, a3 int, b1, b2, b3 bool) bool {
		mk := func(a int, b bool) Pair[Max[int], Bool] {
			return NewPair(NewMax(a), Bool{V: b})
		}
		return CheckLaws([]Pair[Max[int], Bool]{mk(a1, b1), mk(a2, b2), mk(a3, b3)}) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckLawsCatchesViolation(t *testing.T) {
	// A deliberately broken "lattice": subtraction is not idempotent.
	if err := CheckLaws([]bogus{{1}, {2}}); err == nil {
		t.Fatal("CheckLaws accepted a non-lattice")
	}
}

type bogus struct{ v int }

func (b bogus) Merge(o bogus) bogus { return bogus{b.v + o.v} } // not idempotent
func (b bogus) LessEq(o bogus) bool { return b.v <= o.v }
func (b bogus) Equal(o bogus) bool  { return b.v == o.v }

func TestMorphismsMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	samples := randomSets(r, 12)
	if !CheckMonotone(Count[int](), samples) {
		t.Fatal("Count must be monotone")
	}
	if !CheckMonotone(Exists[int](), samples) {
		t.Fatal("Exists must be monotone")
	}
	if !CheckMonotone(MapSet("double", func(x int) int { return 2 * x }), samples) {
		t.Fatal("MapSet must be monotone")
	}
	if !CheckMonotone(FilterSet("even", func(x int) bool { return x%2 == 0 }), samples) {
		t.Fatal("FilterSet must be monotone")
	}
	maxes := []Max[int]{NewMax(0), NewMax(3), NewMax(9)}
	if !CheckMonotone(Threshold(4), maxes) {
		t.Fatal("Threshold must be monotone")
	}
}

func TestCheckMonotoneCatchesNonMonotone(t *testing.T) {
	// "is empty" is antitone, not monotone.
	isEmpty := Morphism[Set[int], Bool]{
		Name: "isEmpty", IsMonotone: false,
		F: func(s Set[int]) Bool { return Bool{V: s.Len() == 0} },
	}
	samples := []Set[int]{NewSet[int](), NewSet(1)}
	if CheckMonotone(isEmpty, samples) {
		t.Fatal("CheckMonotone accepted an antitone function")
	}
}

func TestCompose(t *testing.T) {
	countThenGate := Compose(Count[int](), Threshold(2))
	if !countThenGate.IsMonotone {
		t.Fatal("composition of monotone morphisms must be monotone")
	}
	if countThenGate.Apply(NewSet(1, 2, 3)).V != true {
		t.Fatal("count{1,2,3} ≥ 2 should gate open")
	}
	if countThenGate.Apply(NewSet(1)).V != false {
		t.Fatal("count{1} ≥ 2 should stay closed")
	}
}
