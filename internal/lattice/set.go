package lattice

import (
	"fmt"
	"sort"
	"strings"
)

// Set is the grow-only set lattice under union. It is the workhorse of
// monotonic distributed programming: relations, mailboxes and contact sets
// in the running example are all Set lattices.
//
// Set values are immutable; Merge and Add return new sets that share no
// mutable state with their inputs.
type Set[E comparable] struct {
	m map[E]struct{}
}

// NewSet returns a set containing the given elements.
func NewSet[E comparable](elems ...E) Set[E] {
	m := make(map[E]struct{}, len(elems))
	for _, e := range elems {
		m[e] = struct{}{}
	}
	return Set[E]{m: m}
}

// Len returns the cardinality of the set.
func (s Set[E]) Len() int { return len(s.m) }

// Contains reports membership of e.
func (s Set[E]) Contains(e E) bool {
	_, ok := s.m[e]
	return ok
}

// Elems returns the elements in unspecified order.
func (s Set[E]) Elems() []E {
	out := make([]E, 0, len(s.m))
	for e := range s.m {
		out = append(out, e)
	}
	return out
}

// Add returns a new set with e included.
func (s Set[E]) Add(e E) Set[E] {
	if s.Contains(e) {
		return s
	}
	m := make(map[E]struct{}, len(s.m)+1)
	for k := range s.m {
		m[k] = struct{}{}
	}
	m[e] = struct{}{}
	return Set[E]{m: m}
}

// Merge returns the union of the two sets.
func (s Set[E]) Merge(o Set[E]) Set[E] {
	if len(s.m) == 0 {
		return o
	}
	if len(o.m) == 0 {
		return s
	}
	m := make(map[E]struct{}, len(s.m)+len(o.m))
	for k := range s.m {
		m[k] = struct{}{}
	}
	for k := range o.m {
		m[k] = struct{}{}
	}
	return Set[E]{m: m}
}

// LessEq reports subset inclusion.
func (s Set[E]) LessEq(o Set[E]) bool {
	if len(s.m) > len(o.m) {
		return false
	}
	for k := range s.m {
		if !o.Contains(k) {
			return false
		}
	}
	return true
}

// Equal reports set equality.
func (s Set[E]) Equal(o Set[E]) bool { return len(s.m) == len(o.m) && s.LessEq(o) }

// String renders the set with sorted element strings, for stable output.
func (s Set[E]) String() string {
	parts := make([]string, 0, len(s.m))
	for e := range s.m {
		parts = append(parts, fmt.Sprint(e))
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}

// Map is the keyed lattice: a map whose values are themselves lattice
// elements, merged pointwise. It models sharded state (key → replica state)
// and is the shape of the Anna KVS store.
type Map[K comparable, V Value[V]] struct {
	m map[K]V
}

// NewMap returns an empty keyed lattice.
func NewMap[K comparable, V Value[V]]() Map[K, V] { return Map[K, V]{m: map[K]V{}} }

// MapOf builds a keyed lattice from a plain map (copied).
func MapOf[K comparable, V Value[V]](src map[K]V) Map[K, V] {
	m := make(map[K]V, len(src))
	for k, v := range src {
		m[k] = v
	}
	return Map[K, V]{m: m}
}

// Len returns the number of keys present.
func (ml Map[K, V]) Len() int { return len(ml.m) }

// Get returns the value at k and whether it is present.
func (ml Map[K, V]) Get(k K) (V, bool) {
	v, ok := ml.m[k]
	return v, ok
}

// Put returns a new map with v merged into the value at k.
func (ml Map[K, V]) Put(k K, v V) Map[K, V] {
	m := make(map[K]V, len(ml.m)+1)
	for kk, vv := range ml.m {
		m[kk] = vv
	}
	if old, ok := m[k]; ok {
		m[k] = old.Merge(v)
	} else {
		m[k] = v
	}
	return Map[K, V]{m: m}
}

// Keys returns the keys in unspecified order.
func (ml Map[K, V]) Keys() []K {
	out := make([]K, 0, len(ml.m))
	for k := range ml.m {
		out = append(out, k)
	}
	return out
}

// Merge unions keys and merges values pointwise.
func (ml Map[K, V]) Merge(o Map[K, V]) Map[K, V] {
	m := make(map[K]V, len(ml.m)+len(o.m))
	for k, v := range ml.m {
		m[k] = v
	}
	for k, v := range o.m {
		if old, ok := m[k]; ok {
			m[k] = old.Merge(v)
		} else {
			m[k] = v
		}
	}
	return Map[K, V]{m: m}
}

// LessEq reports pointwise order: every key of ml must be present in o with
// a value at least as large.
func (ml Map[K, V]) LessEq(o Map[K, V]) bool {
	for k, v := range ml.m {
		ov, ok := o.m[k]
		if !ok || !v.LessEq(ov) {
			return false
		}
	}
	return true
}

// Equal reports pointwise equality.
func (ml Map[K, V]) Equal(o Map[K, V]) bool {
	if len(ml.m) != len(o.m) {
		return false
	}
	for k, v := range ml.m {
		ov, ok := o.m[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}
