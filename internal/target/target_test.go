package target

import (
	"testing"

	"hydro/internal/cluster"
	"hydro/internal/hlang"
)

func covidProgram(t *testing.T) *hlang.Program {
	t.Helper()
	p, err := hlang.Parse(hlang.CovidSource)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func stdClasses() []cluster.MachineClass {
	return []cluster.MachineClass{cluster.ClassSmall, cluster.ClassLarge, cluster.ClassGPU}
}

func stdLoads() map[string]HandlerLoad {
	return map[string]HandlerLoad{
		"add_person":  {RatePerSec: 50, ServiceMs: 2},
		"add_contact": {RatePerSec: 200, ServiceMs: 2},
		"trace":       {RatePerSec: 10, ServiceMs: 20},
		"diagnosed":   {RatePerSec: 5, ServiceMs: 20},
		"likelihood":  {RatePerSec: 5, ServiceMs: 40},
		"vaccinate":   {RatePerSec: 20, ServiceMs: 3},
	}
}

func TestSolveCovidDeployment(t *testing.T) {
	p := covidProgram(t)
	plan, err := Solve(p, stdClasses(), stdLoads(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Machines == 0 || plan.Machines > 8 {
		t.Fatalf("machines = %d, want 1..8", plan.Machines)
	}
	// likelihood declares processor=gpu: it must land only on GPU classes.
	lh := plan.Allocations["likelihood"]
	if len(lh.Counts) == 0 {
		t.Fatal("likelihood got no machines")
	}
	for name := range lh.Counts {
		if name != cluster.ClassGPU.Name {
			t.Fatalf("likelihood on non-GPU class %s", name)
		}
	}
	for name, a := range plan.Allocations {
		spec := p.TargetFor(name)
		if spec.LatencyMs > 0 && a.LatencyMs > spec.LatencyMs {
			t.Fatalf("%s modeled latency %.1fms exceeds spec %.0fms", name, a.LatencyMs, spec.LatencyMs)
		}
		if spec.Cost > 0 && a.CostPerCall > spec.Cost {
			t.Fatalf("%s cost/call %.6f exceeds budget %.2f", name, a.CostPerCall, spec.Cost)
		}
	}
	if plan.TotalHourly <= 0 {
		t.Fatal("zero-cost deployment")
	}
}

func TestSolveScalesWithLoad(t *testing.T) {
	p := covidProgram(t)
	loads := stdLoads()
	// 4000 calls/sec at 2ms service: one small machine (500/s) cannot carry
	// it at 80% utilization, so the solver must assign multiple machines.
	loads["add_contact"] = HandlerLoad{RatePerSec: 4000, ServiceMs: 2}
	plan, err := Solve(p, stdClasses(), loads, 32)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range plan.Allocations["add_contact"].Counts {
		total += n
	}
	if total < 2 {
		t.Fatalf("add_contact got %d machines for 4000/s load", total)
	}
}

func TestSolveInfeasibleMachineBudget(t *testing.T) {
	p := covidProgram(t)
	// 6 handlers each need at least one machine; 3 cannot work.
	if _, err := Solve(p, stdClasses(), stdLoads(), 3); err == nil {
		t.Fatal("want infeasibility error with maxNodes=3")
	}
}

func TestSolveNoFeasibleClass(t *testing.T) {
	p := covidProgram(t)
	// Only the small class, but likelihood requires a GPU.
	if _, err := Solve(p, []cluster.MachineClass{cluster.ClassSmall}, stdLoads(), 8); err == nil {
		t.Fatal("want error when processor=gpu has no GPU class")
	}
}

func TestLatencyGateExcludesSlowClass(t *testing.T) {
	p := covidProgram(t)
	loads := stdLoads()
	// 60ms service on small (speed 1) is 300ms at the utilization cap,
	// violating the default 100ms budget; the large class (24ms service,
	// 120ms worst-case) also fails; GPU (15ms → 75ms) passes.
	loads["trace"] = HandlerLoad{RatePerSec: 10, ServiceMs: 60}
	plan, err := Solve(p, stdClasses(), loads, 8)
	if err != nil {
		t.Fatal(err)
	}
	for name := range plan.Allocations["trace"].Counts {
		if name == cluster.ClassSmall.Name || name == cluster.ClassLarge.Name {
			t.Fatalf("trace placed on %s, which cannot meet the latency budget", name)
		}
	}
}
