// Package target implements the target facet of §9.1: mapping each handler
// of a HydroLogic program onto a fleet of machine classes so that declared
// latency and cost budgets hold, by solving the deployment problem as an
// integer program (the paper formulates Fig 3's deployment exactly this
// way). It sits on top of the generic branch-and-bound solver in
// internal/ilp and the machine-class catalog in internal/cluster.
package target

import (
	"fmt"
	"math"

	"hydro/internal/cluster"
	"hydro/internal/hlang"
	"hydro/internal/ilp"
)

// HandlerLoad is the offered load of one handler: request rate and the
// per-call service time on the baseline (SpeedFactor=1) machine class.
type HandlerLoad struct {
	RatePerSec float64
	ServiceMs  float64
}

// utilizationCap bounds per-handler fleet utilization; the queueing factor
// 1/(1-ρ) is then at most 5×, which is what the class-feasibility gate
// checks against the declared latency budget.
const utilizationCap = 0.8

// Allocation is the solved deployment of one handler.
type Allocation struct {
	// Counts maps machine-class name to the number of machines assigned.
	Counts map[string]int
	// LatencyMs is the modeled per-call latency: the slowest assigned
	// class's service time scaled by the M/M/1 queueing factor 1/(1-ρ).
	LatencyMs float64
	// CostPerCall is the fleet's hourly cost amortized over the call rate.
	CostPerCall float64
	// Hourly is the fleet's total hourly cost for this handler.
	Hourly float64
}

// Plan is a full deployment mapping for a program.
type Plan struct {
	Allocations map[string]Allocation
	// Machines is the total machine count across all handlers.
	Machines int
	// TotalHourly is the whole deployment's hourly cost.
	TotalHourly float64
}

// defaultLoad stands in for handlers the caller gave no measurement for.
var defaultLoad = HandlerLoad{RatePerSec: 1, ServiceMs: 1}

// serviceMs returns the per-call service time of the handler on a class.
func serviceMs(load HandlerLoad, c cluster.MachineClass) float64 {
	return load.ServiceMs / c.SpeedFactor
}

// capacityPerSec returns calls/sec one machine of the class sustains.
func capacityPerSec(load HandlerLoad, c cluster.MachineClass) float64 {
	return 1000 / serviceMs(load, c)
}

// classAllowed applies the spec's hard gates: processor pinning and the
// worst-case latency a class could deliver at the utilization cap.
func classAllowed(spec hlang.TargetSpec, load HandlerLoad, c cluster.MachineClass) bool {
	if spec.Processor == "gpu" && !c.GPU {
		return false
	}
	if spec.LatencyMs > 0 && serviceMs(load, c)/(1-utilizationCap) > spec.LatencyMs {
		return false
	}
	return true
}

// Solve builds and solves the deployment integer program: one integer
// variable per (handler, machine class) pair, minimizing total hourly cost
// subject to capacity (utilization ≤ 0.8), per-call cost budgets, processor
// pinning, and the global machine budget maxNodes. It returns
// ilp.ErrInfeasible-wrapped errors when no deployment satisfies the facets.
func Solve(p *hlang.Program, classes []cluster.MachineClass, loads map[string]HandlerLoad, maxNodes int) (*Plan, error) {
	if len(p.Handlers) == 0 {
		return &Plan{Allocations: map[string]Allocation{}}, nil
	}
	if maxNodes <= 0 {
		maxNodes = len(p.Handlers) * len(classes)
	}
	prob := ilp.New()
	type varRef struct {
		handler string
		class   cluster.MachineClass
		idx     int
	}
	var vars []varRef
	nv := func() int { return prob.NumVars() }

	for _, h := range p.Handlers {
		spec := p.TargetFor(h.Name)
		load, ok := loads[h.Name]
		if !ok {
			load = defaultLoad
		}
		allowed := 0
		for _, c := range classes {
			if !classAllowed(spec, load, c) {
				continue
			}
			// Enough machines of this class alone to carry the handler
			// bounds the branch-and-bound search tightly.
			need := int(math.Ceil(load.RatePerSec / (utilizationCap * capacityPerSec(load, c))))
			if need < 1 {
				need = 1
			}
			ub := need
			if ub > maxNodes {
				ub = maxNodes
			}
			idx := prob.AddVar(h.Name+":"+c.Name, 0, ub, c.CostPerHour)
			vars = append(vars, varRef{handler: h.Name, class: c, idx: idx})
			allowed++
		}
		if allowed == 0 {
			return nil, fmt.Errorf("target: handler %s: no machine class satisfies processor=%q latency=%gms",
				h.Name, spec.Processor, spec.LatencyMs)
		}
	}

	// Per-handler capacity and cost-budget constraints.
	for _, h := range p.Handlers {
		spec := p.TargetFor(h.Name)
		load, ok := loads[h.Name]
		if !ok {
			load = defaultLoad
		}
		capCoefs := make([]float64, nv())
		costCoefs := make([]float64, nv())
		for _, v := range vars {
			if v.handler != h.Name {
				continue
			}
			capCoefs[v.idx] = capacityPerSec(load, v.class)
			costCoefs[v.idx] = v.class.CostPerHour
		}
		prob.AddConstraint("cap:"+h.Name, capCoefs, ilp.GE, load.RatePerSec/utilizationCap)
		if spec.Cost > 0 {
			// hourly cost ≤ per-call budget × calls per hour
			prob.AddConstraint("cost:"+h.Name, costCoefs, ilp.LE, spec.Cost*load.RatePerSec*3600)
		}
	}

	// Global machine budget.
	all := make([]float64, nv())
	for i := range all {
		all[i] = 1
	}
	prob.AddConstraint("max-nodes", all, ilp.LE, float64(maxNodes))

	sol, err := prob.Solve(0)
	if err != nil {
		return nil, fmt.Errorf("target: deployment ILP: %w", err)
	}

	plan := &Plan{Allocations: map[string]Allocation{}}
	for _, h := range p.Handlers {
		load, ok := loads[h.Name]
		if !ok {
			load = defaultLoad
		}
		a := Allocation{Counts: map[string]int{}}
		capacity := 0.0
		worstServ := 0.0
		for _, v := range vars {
			if v.handler != h.Name {
				continue
			}
			n := sol.Values[v.idx]
			if n == 0 {
				continue
			}
			a.Counts[v.class.Name] = n
			a.Hourly += float64(n) * v.class.CostPerHour
			capacity += float64(n) * capacityPerSec(load, v.class)
			if s := serviceMs(load, v.class); s > worstServ {
				worstServ = s
			}
			plan.Machines += n
		}
		rho := load.RatePerSec / capacity
		a.LatencyMs = worstServ / (1 - rho)
		a.CostPerCall = a.Hourly / (load.RatePerSec * 3600)
		plan.TotalHourly += a.Hourly
		plan.Allocations[h.Name] = a
	}
	return plan, nil
}
