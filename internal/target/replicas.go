package target

import (
	"fmt"
	"math"
	"sort"

	"hydro/internal/cluster"
	"hydro/internal/ilp"
)

// PlaceReplicas solves shard-replica placement as the same Fig-3 style
// integer program the handler deployment uses: pick n machines from the
// topology minimizing total hourly cost, subject to the availability
// constraint that no AZ hosts more than ceil(n/#AZs) replicas — a loss of
// one zone then takes out the fewest possible shards. Down machines are
// excluded. The chosen machine IDs come back sorted, which is the replica
// index order a deployment will use.
func PlaceReplicas(topo *cluster.Topology, n int) ([]string, error) {
	if n < 1 {
		return nil, fmt.Errorf("target: need at least 1 replica")
	}
	var up []*cluster.Machine
	azSet := map[string]bool{}
	for _, m := range topo.Machines {
		if m.Up() {
			up = append(up, m)
			azSet[m.AZ] = true
		}
	}
	if len(up) < n {
		return nil, fmt.Errorf("target: need %d machines, only %d up", n, len(up))
	}
	azs := make([]string, 0, len(azSet))
	for az := range azSet {
		azs = append(azs, az)
	}
	sort.Strings(azs)
	perAZ := int(math.Ceil(float64(n) / float64(len(azs))))

	p := ilp.New()
	for _, m := range up {
		p.AddVar("x_"+m.ID, 0, 1, m.Class.CostPerHour)
	}
	total := make([]float64, len(up))
	for i := range up {
		total[i] = 1
	}
	p.AddConstraint("replicas", total, ilp.EQ, float64(n))
	for _, az := range azs {
		coefs := make([]float64, len(up))
		for i, m := range up {
			if m.AZ == az {
				coefs[i] = 1
			}
		}
		p.AddConstraint("az-cap-"+az, coefs, ilp.LE, float64(perAZ))
	}
	sol, err := p.Solve(0)
	if err != nil {
		return nil, fmt.Errorf("target: replica placement: %w", err)
	}
	var out []string
	for i, m := range up {
		if sol.Values[i] > 0 {
			out = append(out, m.ID)
		}
	}
	sort.Strings(out)
	return out, nil
}
