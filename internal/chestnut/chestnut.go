// Package chestnut is a data-layout synthesizer in the style of the
// Chestnut system the paper cites in §5.2: given a table's workload profile
// (point lookups, range scans, inserts, per column), it enumerates candidate
// physical designs (heap / hash / B+-tree primary layout, plus secondary
// hash indexes) and picks the cheapest under a cost model. Experiment E3
// measures the resulting speedup against the naive heap layout, checking
// the paper's "up to 42×" claim shape.
package chestnut

import (
	"fmt"
	"math"
	"sort"

	"hydro/internal/storage"
)

// Workload profiles expected operation mix for one table.
type Workload struct {
	TableRows int
	// PointLookups[col] = expected point lookups per period against col.
	PointLookups map[string]float64
	// RangeScans = expected key-range scans per period (key column only).
	RangeScans float64
	// Inserts per period.
	Inserts float64
}

// Design is one candidate physical design.
type Design struct {
	Layout    storage.Layout
	Secondary []string // columns with secondary hash indexes
	Cost      float64
}

func (d Design) String() string {
	s := d.Layout.String()
	if len(d.Secondary) > 0 {
		s += fmt.Sprintf("+idx%v", d.Secondary)
	}
	return fmt.Sprintf("%s (cost %.1f)", s, d.Cost)
}

// Cost-model constants: abstract row-touch units.
const (
	costHashProbe   = 1.0
	costTreeProbe   = 3.0 // ~depth
	costRowInsert   = 1.0
	costIndexUpkeep = 0.5 // per secondary index per insert
	costTreeInsert  = 3.0
)

// Cost estimates the per-period cost of a design under a workload — the
// "cost model that estimates the cost of each query" of §5.1.
func Cost(d Design, w Workload, keyCol string) float64 {
	n := float64(w.TableRows)
	if n < 1 {
		n = 1
	}
	cost := 0.0
	secondary := map[string]bool{}
	for _, c := range d.Secondary {
		secondary[c] = true
	}
	for col, freq := range w.PointLookups {
		var per float64
		switch {
		case col == keyCol && d.Layout == storage.LayoutHash:
			per = costHashProbe
		case col == keyCol && d.Layout == storage.LayoutBTree:
			per = costTreeProbe
		case secondary[col]:
			per = costHashProbe
		default:
			per = n // full scan
		}
		cost += freq * per
	}
	// Range scans: B+-tree pays for rows in range (assume 10%); others
	// scan everything.
	if w.RangeScans > 0 {
		per := n
		if d.Layout == storage.LayoutBTree {
			per = math.Max(1, n*0.1)
		}
		cost += w.RangeScans * per
	}
	insertCost := costRowInsert
	if d.Layout == storage.LayoutBTree {
		insertCost = costTreeInsert
	}
	insertCost += float64(len(d.Secondary)) * costIndexUpkeep
	cost += w.Inserts * insertCost
	return cost
}

// Synthesize enumerates designs for a table and returns them sorted by
// cost, cheapest first. cols are the non-key columns eligible for secondary
// indexes.
func Synthesize(keyCol string, cols []string, w Workload) []Design {
	layouts := []storage.Layout{storage.LayoutHeap, storage.LayoutHash, storage.LayoutBTree}
	// Enumerate secondary index subsets (cap the powerset for sanity).
	subsets := [][]string{nil}
	for _, c := range cols {
		cur := len(subsets)
		for i := 0; i < cur; i++ {
			s := append(append([]string{}, subsets[i]...), c)
			subsets = append(subsets, s)
		}
	}
	var out []Design
	for _, l := range layouts {
		for _, sec := range subsets {
			d := Design{Layout: l, Secondary: sec}
			d.Cost = Cost(d, w, keyCol)
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost < out[j].Cost
		}
		// Tie-break: fewer indexes, simpler layout.
		if len(out[i].Secondary) != len(out[j].Secondary) {
			return len(out[i].Secondary) < len(out[j].Secondary)
		}
		return out[i].Layout < out[j].Layout
	})
	return out
}

// Best returns the cheapest design.
func Best(keyCol string, cols []string, w Workload) Design {
	return Synthesize(keyCol, cols, w)[0]
}

// Build materializes a design as a storage.Table.
func Build(name, keyCol string, d Design) *storage.Table {
	t := storage.NewTable(name, keyCol, d.Layout)
	for _, c := range d.Secondary {
		t.AddSecondaryIndex(c)
	}
	return t
}

// Advisor supports incremental re-synthesis (§5.2 "workload changes ...
// motivate incremental synthesis"): feed it observed operations and ask
// whether the current design should change.
type Advisor struct {
	KeyCol  string
	Cols    []string
	Current Design
	// Observed counts since last Decide.
	w Workload
	// HysteresisRatio guards against flapping: a new design must beat the
	// current one by this factor.
	HysteresisRatio float64
}

// NewAdvisor starts from an initial design.
func NewAdvisor(keyCol string, cols []string, initial Design) *Advisor {
	return &Advisor{KeyCol: keyCol, Cols: cols, Current: initial, HysteresisRatio: 1.2,
		w: Workload{PointLookups: map[string]float64{}}}
}

// ObserveLookup records a point lookup against col.
func (a *Advisor) ObserveLookup(col string) { a.w.PointLookups[col]++ }

// ObserveRange records a range scan.
func (a *Advisor) ObserveRange() { a.w.RangeScans++ }

// ObserveInsert records an insert.
func (a *Advisor) ObserveInsert() { a.w.Inserts++; a.w.TableRows++ }

// SetRows sets the table cardinality estimate.
func (a *Advisor) SetRows(n int) { a.w.TableRows = n }

// Decide returns a better design if one beats the current by the hysteresis
// ratio, and resets observation counters.
func (a *Advisor) Decide() (Design, bool) {
	best := Best(a.KeyCol, a.Cols, a.w)
	cur := a.Current
	cur.Cost = Cost(cur, a.w, a.KeyCol)
	a.w = Workload{PointLookups: map[string]float64{}, TableRows: a.w.TableRows}
	if best.Cost*a.HysteresisRatio < cur.Cost {
		a.Current = best
		return best, true
	}
	return cur, false
}
