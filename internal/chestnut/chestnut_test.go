package chestnut

import (
	"fmt"
	"testing"

	"hydro/internal/storage"
)

func TestLookupHeavyPicksHash(t *testing.T) {
	w := Workload{
		TableRows:    10000,
		PointLookups: map[string]float64{"id": 1000},
		Inserts:      10,
	}
	d := Best("id", []string{"country"}, w)
	if d.Layout != storage.LayoutHash {
		t.Fatalf("picked %v, want hash for lookup-heavy workload", d)
	}
	if len(d.Secondary) != 0 {
		t.Fatalf("unnecessary secondary indexes: %v", d)
	}
}

func TestRangeHeavyPicksBTree(t *testing.T) {
	w := Workload{
		TableRows:  10000,
		RangeScans: 500,
		Inserts:    10,
	}
	d := Best("id", nil, w)
	if d.Layout != storage.LayoutBTree {
		t.Fatalf("picked %v, want btree for range-heavy workload", d)
	}
}

func TestInsertOnlyPicksHeap(t *testing.T) {
	w := Workload{TableRows: 1000, Inserts: 10000}
	d := Best("id", []string{"a", "b"}, w)
	if d.Layout == storage.LayoutBTree || len(d.Secondary) != 0 {
		t.Fatalf("picked %v, want cheap-write design for insert-only workload", d)
	}
}

func TestNonKeyLookupsJustifySecondaryIndex(t *testing.T) {
	w := Workload{
		TableRows:    100000,
		PointLookups: map[string]float64{"country": 500},
		Inserts:      100,
	}
	d := Best("id", []string{"country", "age"}, w)
	found := false
	for _, c := range d.Secondary {
		if c == "country" {
			found = true
		}
		if c == "age" {
			t.Fatalf("indexed unqueried column: %v", d)
		}
	}
	if !found {
		t.Fatalf("country index not chosen: %v", d)
	}
}

func TestCostMonotoneInTableSizeForScans(t *testing.T) {
	d := Design{Layout: storage.LayoutHeap}
	small := Cost(d, Workload{TableRows: 100, PointLookups: map[string]float64{"x": 10}}, "id")
	big := Cost(d, Workload{TableRows: 100000, PointLookups: map[string]float64{"x": 10}}, "id")
	if big <= small {
		t.Fatal("scan cost must grow with table size")
	}
}

func TestSynthesizeOrdering(t *testing.T) {
	w := Workload{TableRows: 1000, PointLookups: map[string]float64{"id": 100}}
	designs := Synthesize("id", []string{"c"}, w)
	for i := 1; i < len(designs); i++ {
		if designs[i].Cost < designs[i-1].Cost {
			t.Fatal("designs not sorted by cost")
		}
	}
	if len(designs) != 6 { // 3 layouts × 2 subsets
		t.Fatalf("enumerated %d designs, want 6", len(designs))
	}
}

func TestBuildMaterializesDesign(t *testing.T) {
	d := Design{Layout: storage.LayoutHash, Secondary: []string{"country"}}
	tbl := Build("users", "id", d)
	for i := 0; i < 100; i++ {
		tbl.Insert(storage.Row{"id": fmt.Sprintf("u%d", i), "country": fmt.Sprintf("c%d", i%3)})
	}
	before := tbl.Stats
	if got := tbl.Lookup("country", "c1"); len(got) == 0 {
		t.Fatal("indexed lookup failed")
	}
	if tbl.Stats.Scans != before.Scans {
		t.Fatal("design's secondary index not built")
	}
}

// The synthesized design actually beats naive heap on a real table — the
// empirical half of E3 (the bench in bench_test.go reports the factor).
func TestSynthesizedBeatsNaiveEmpirically(t *testing.T) {
	const rows = 20000
	w := Workload{
		TableRows:    rows,
		PointLookups: map[string]float64{"id": 1000},
		Inserts:      10,
	}
	best := Best("id", nil, w)
	naive := Build("t", "id", Design{Layout: storage.LayoutHeap})
	smart := Build("t", "id", best)
	for i := 0; i < rows; i++ {
		r := storage.Row{"id": fmt.Sprintf("u%06d", i)}
		naive.Insert(r)
		smart.Insert(r)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("u%06d", i*37)
		naive.Lookup("id", key)
		smart.Lookup("id", key)
	}
	if smart.Stats.RowsTouched*100 > naive.Stats.RowsTouched {
		t.Fatalf("synthesized design touched %d rows vs naive %d; want ≥100× reduction",
			smart.Stats.RowsTouched, naive.Stats.RowsTouched)
	}
}

func TestAdvisorIncrementalResynthesis(t *testing.T) {
	a := NewAdvisor("id", []string{"country"}, Design{Layout: storage.LayoutHeap})
	a.SetRows(50000)
	// Phase 1: lookup-heavy observation window.
	for i := 0; i < 1000; i++ {
		a.ObserveLookup("id")
	}
	d, changed := a.Decide()
	if !changed || d.Layout != storage.LayoutHash {
		t.Fatalf("advisor should switch to hash: %v changed=%v", d, changed)
	}
	// Phase 2: tiny workload — hysteresis prevents flapping.
	a.ObserveLookup("id")
	if _, changed := a.Decide(); changed {
		t.Fatal("advisor flapped on negligible evidence")
	}
	// Phase 3: range-heavy shift.
	a.SetRows(50000)
	for i := 0; i < 2000; i++ {
		a.ObserveRange()
	}
	d, changed = a.Decide()
	if !changed || d.Layout != storage.LayoutBTree {
		t.Fatalf("advisor should switch to btree: %v changed=%v", d, changed)
	}
}
