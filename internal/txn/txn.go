// Package txn provides the transactional machinery the consistency facet
// (§7) draws on when invariants demand isolation: a strict two-phase-locking
// lock manager with deadlock detection, a local transaction manager, and a
// two-phase-commit coordinator for multi-partition transactions.
//
// The paper's vaccinate handler compiles to exactly this when its
// serializable spec cannot be discharged by monotonicity analysis alone.
package txn

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// LockMode is shared or exclusive.
type LockMode int

// Lock modes.
const (
	Shared LockMode = iota
	Exclusive
)

// ErrDeadlock is returned when acquiring would create a wait cycle.
var ErrDeadlock = errors.New("txn: deadlock detected")

// ErrConflict is returned by TryAcquire when the lock is unavailable.
var ErrConflict = errors.New("txn: lock conflict")

// ErrAborted is returned when operating on an aborted transaction.
var ErrAborted = errors.New("txn: transaction aborted")

type lockState struct {
	holders map[uint64]LockMode
}

func (ls *lockState) compatible(tid uint64, mode LockMode) bool {
	for holder, held := range ls.holders {
		if holder == tid {
			continue
		}
		if mode == Exclusive || held == Exclusive {
			return false
		}
	}
	return true
}

// LockManager implements strict 2PL with wait-for-graph deadlock detection.
// It is safe for concurrent use.
type LockManager struct {
	mu      sync.Mutex
	locks   map[string]*lockState
	waitFor map[uint64]map[uint64]bool // waiter → holders
	cond    *sync.Cond
	aborted map[uint64]bool
}

// NewLockManager returns an empty lock manager.
func NewLockManager() *LockManager {
	lm := &LockManager{
		locks:   map[string]*lockState{},
		waitFor: map[uint64]map[uint64]bool{},
		aborted: map[uint64]bool{},
	}
	lm.cond = sync.NewCond(&lm.mu)
	return lm
}

// TryAcquire attempts a non-blocking acquire.
func (lm *LockManager) TryAcquire(tid uint64, key string, mode LockMode) error {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.tryLocked(tid, key, mode)
}

func (lm *LockManager) tryLocked(tid uint64, key string, mode LockMode) error {
	if lm.aborted[tid] {
		return ErrAborted
	}
	ls, ok := lm.locks[key]
	if !ok {
		ls = &lockState{holders: map[uint64]LockMode{}}
		lm.locks[key] = ls
	}
	if held, mine := ls.holders[tid]; mine && (held == Exclusive || held == mode) {
		return nil // already held at sufficient strength
	}
	if !ls.compatible(tid, mode) {
		return ErrConflict
	}
	// Upgrade or fresh acquire.
	if held, mine := ls.holders[tid]; !mine || held == Shared {
		ls.holders[tid] = mode
	}
	return nil
}

// Acquire blocks until the lock is granted or a deadlock is detected, in
// which case the requesting transaction is aborted and ErrDeadlock returned.
func (lm *LockManager) Acquire(tid uint64, key string, mode LockMode) error {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for {
		err := lm.tryLocked(tid, key, mode)
		if err == nil {
			delete(lm.waitFor, tid)
			return nil
		}
		if errors.Is(err, ErrAborted) {
			return err
		}
		// Record edges waiter→holders and check for a cycle.
		holders := map[uint64]bool{}
		for h := range lm.locks[key].holders {
			if h != tid {
				holders[h] = true
			}
		}
		lm.waitFor[tid] = holders
		if lm.cycleFrom(tid) {
			delete(lm.waitFor, tid)
			lm.aborted[tid] = true
			lm.releaseAllLocked(tid)
			return ErrDeadlock
		}
		lm.cond.Wait()
	}
}

// cycleFrom reports whether tid participates in a wait-for cycle.
func (lm *LockManager) cycleFrom(start uint64) bool {
	visited := map[uint64]bool{}
	var dfs func(cur uint64) bool
	dfs = func(cur uint64) bool {
		for next := range lm.waitFor[cur] {
			if next == start {
				return true
			}
			if !visited[next] {
				visited[next] = true
				if dfs(next) {
					return true
				}
			}
		}
		return false
	}
	return dfs(start)
}

// ReleaseAll drops every lock a transaction holds (commit or abort).
func (lm *LockManager) ReleaseAll(tid uint64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	lm.releaseAllLocked(tid)
	delete(lm.aborted, tid)
}

func (lm *LockManager) releaseAllLocked(tid uint64) {
	for key, ls := range lm.locks {
		if _, ok := ls.holders[tid]; ok {
			delete(ls.holders, tid)
			if len(ls.holders) == 0 {
				delete(lm.locks, key)
			}
		}
	}
	lm.cond.Broadcast()
}

// Held reports the mode tid holds on key, if any.
func (lm *LockManager) Held(tid uint64, key string) (LockMode, bool) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	ls, ok := lm.locks[key]
	if !ok {
		return 0, false
	}
	m, ok := ls.holders[tid]
	return m, ok
}

// --- Local transactional store (strict 2PL over a KV map) ---

// Store is a serializable key-value store: every read takes a shared lock,
// every write an exclusive lock, all held to commit (strict 2PL).
type Store struct {
	mu   sync.Mutex
	data map[string]any
	lm   *LockManager
	next uint64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{data: map[string]any{}, lm: NewLockManager()}
}

// Txn is one open transaction.
type Txn struct {
	ID     uint64
	s      *Store
	writes map[string]any
	dels   map[string]bool
	done   bool
}

// Begin opens a transaction.
func (s *Store) Begin() *Txn {
	s.mu.Lock()
	s.next++
	id := s.next
	s.mu.Unlock()
	return &Txn{ID: id, s: s, writes: map[string]any{}, dels: map[string]bool{}}
}

// Get reads a key under a shared lock (own writes win).
func (t *Txn) Get(key string) (any, bool, error) {
	if t.done {
		return nil, false, ErrAborted
	}
	if t.dels[key] {
		return nil, false, nil
	}
	if v, ok := t.writes[key]; ok {
		return v, true, nil
	}
	if err := t.s.lm.Acquire(t.ID, key, Shared); err != nil {
		t.rollback()
		return nil, false, err
	}
	t.s.mu.Lock()
	v, ok := t.s.data[key]
	t.s.mu.Unlock()
	return v, ok, nil
}

// Put buffers a write under an exclusive lock.
func (t *Txn) Put(key string, v any) error {
	if t.done {
		return ErrAborted
	}
	if err := t.s.lm.Acquire(t.ID, key, Exclusive); err != nil {
		t.rollback()
		return err
	}
	delete(t.dels, key)
	t.writes[key] = v
	return nil
}

// Delete buffers a deletion under an exclusive lock.
func (t *Txn) Delete(key string) error {
	if t.done {
		return ErrAborted
	}
	if err := t.s.lm.Acquire(t.ID, key, Exclusive); err != nil {
		t.rollback()
		return err
	}
	delete(t.writes, key)
	t.dels[key] = true
	return nil
}

// Commit applies buffered writes and releases locks.
func (t *Txn) Commit() error {
	if t.done {
		return ErrAborted
	}
	t.s.mu.Lock()
	for k, v := range t.writes {
		t.s.data[k] = v
	}
	for k := range t.dels {
		delete(t.s.data, k)
	}
	t.s.mu.Unlock()
	t.s.lm.ReleaseAll(t.ID)
	t.done = true
	return nil
}

// Abort discards buffered writes and releases locks.
func (t *Txn) Abort() {
	if !t.done {
		t.rollback()
	}
}

func (t *Txn) rollback() {
	t.s.lm.ReleaseAll(t.ID)
	t.writes = map[string]any{}
	t.dels = map[string]bool{}
	t.done = true
}

// Snapshot returns a copy of committed state (test/inspection helper).
func (s *Store) Snapshot() map[string]any {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]any, len(s.data))
	for k, v := range s.data {
		out[k] = v
	}
	return out
}

// --- Two-phase commit across partitions ---

// Participant is one partition in a distributed transaction: it can prepare
// (acquire locks, validate) and then commit or abort.
type Participant interface {
	Name() string
	Prepare(tid uint64, writes map[string]any) error
	Commit(tid uint64)
	Abort(tid uint64)
}

// StorePart adapts a Store to the Participant interface.
type StorePart struct {
	PartName string
	S        *Store
	prepared map[uint64]*Txn
	mu       sync.Mutex
}

// NewStorePart wraps a store as a 2PC participant.
func NewStorePart(name string, s *Store) *StorePart {
	return &StorePart{PartName: name, S: s, prepared: map[uint64]*Txn{}}
}

// Name implements Participant.
func (sp *StorePart) Name() string { return sp.PartName }

// Prepare acquires locks and buffers writes; the vote is the error value.
func (sp *StorePart) Prepare(tid uint64, writes map[string]any) error {
	t := sp.S.Begin()
	keys := make([]string, 0, len(writes))
	for k := range writes {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic lock order reduces deadlocks
	for _, k := range keys {
		if err := t.Put(k, writes[k]); err != nil {
			return fmt.Errorf("participant %s: %w", sp.PartName, err)
		}
	}
	sp.mu.Lock()
	sp.prepared[tid] = t
	sp.mu.Unlock()
	return nil
}

// Commit implements Participant.
func (sp *StorePart) Commit(tid uint64) {
	sp.mu.Lock()
	t := sp.prepared[tid]
	delete(sp.prepared, tid)
	sp.mu.Unlock()
	if t != nil {
		t.Commit()
	}
}

// Abort implements Participant.
func (sp *StorePart) Abort(tid uint64) {
	sp.mu.Lock()
	t := sp.prepared[tid]
	delete(sp.prepared, tid)
	sp.mu.Unlock()
	if t != nil {
		t.Abort()
	}
}

// Coordinator runs two-phase commit.
type Coordinator struct {
	mu     sync.Mutex
	nextID uint64
	// Stats for the consistency-cost experiments.
	Commits, Aborts uint64
	RoundTrips      uint64
}

// Execute runs one distributed transaction: writesByPart maps participant
// name → its writes. All-or-nothing across participants.
func (c *Coordinator) Execute(parts []Participant, writesByPart map[string]map[string]any) error {
	c.mu.Lock()
	c.nextID++
	tid := c.nextID
	c.mu.Unlock()

	// Phase 1: prepare everyone involved.
	var involved []Participant
	for _, p := range parts {
		if w, ok := writesByPart[p.Name()]; ok && len(w) > 0 {
			involved = append(involved, p)
		}
	}
	for i, p := range involved {
		c.bumpRT()
		if err := p.Prepare(tid, writesByPart[p.Name()]); err != nil {
			// Abort everything prepared so far (and the failed one).
			for j := 0; j <= i && j < len(involved); j++ {
				involved[j].Abort(tid)
			}
			c.mu.Lock()
			c.Aborts++
			c.mu.Unlock()
			return err
		}
	}
	// Phase 2: commit.
	for _, p := range involved {
		c.bumpRT()
		p.Commit(tid)
	}
	c.mu.Lock()
	c.Commits++
	c.mu.Unlock()
	return nil
}

func (c *Coordinator) bumpRT() {
	c.mu.Lock()
	c.RoundTrips++
	c.mu.Unlock()
}
