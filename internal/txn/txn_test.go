package txn

import (
	"errors"
	"sync"
	"testing"
)

func TestLockCompatibility(t *testing.T) {
	lm := NewLockManager()
	if err := lm.TryAcquire(1, "k", Shared); err != nil {
		t.Fatal(err)
	}
	if err := lm.TryAcquire(2, "k", Shared); err != nil {
		t.Fatal("shared locks must be compatible")
	}
	if err := lm.TryAcquire(3, "k", Exclusive); !errors.Is(err, ErrConflict) {
		t.Fatal("exclusive must conflict with shared holders")
	}
	lm.ReleaseAll(1)
	lm.ReleaseAll(2)
	if err := lm.TryAcquire(3, "k", Exclusive); err != nil {
		t.Fatal("lock not released")
	}
	if err := lm.TryAcquire(4, "k", Shared); !errors.Is(err, ErrConflict) {
		t.Fatal("shared must conflict with exclusive holder")
	}
}

func TestLockReentrancyAndUpgrade(t *testing.T) {
	lm := NewLockManager()
	if err := lm.TryAcquire(1, "k", Shared); err != nil {
		t.Fatal(err)
	}
	if err := lm.TryAcquire(1, "k", Shared); err != nil {
		t.Fatal("re-acquire of held shared lock failed")
	}
	if err := lm.TryAcquire(1, "k", Exclusive); err != nil {
		t.Fatal("sole-holder upgrade failed")
	}
	if m, ok := lm.Held(1, "k"); !ok || m != Exclusive {
		t.Fatal("upgrade not recorded")
	}
}

func TestDeadlockDetected(t *testing.T) {
	lm := NewLockManager()
	if err := lm.TryAcquire(1, "a", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := lm.TryAcquire(2, "b", Exclusive); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = lm.Acquire(1, "b", Exclusive) }()
	go func() { defer wg.Done(); errs[1] = lm.Acquire(2, "a", Exclusive) }()
	wg.Wait()
	deadlocks := 0
	for _, err := range errs {
		if errors.Is(err, ErrDeadlock) {
			deadlocks++
		} else if err != nil {
			t.Fatalf("unexpected error %v", err)
		}
	}
	if deadlocks == 0 {
		t.Fatal("deadlock went undetected")
	}
	if deadlocks == 2 {
		t.Fatal("both transactions aborted; one should survive")
	}
}

func TestTxnCommitAndAbort(t *testing.T) {
	s := NewStore()
	t1 := s.Begin()
	if err := t1.Put("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	t2 := s.Begin()
	if err := t2.Put("x", 2); err != nil {
		t.Fatal(err)
	}
	t2.Abort()
	if got := s.Snapshot()["x"]; got != 1 {
		t.Fatalf("abort leaked: x = %v", got)
	}
	// Delete path.
	t3 := s.Begin()
	if err := t3.Delete("x"); err != nil {
		t.Fatal(err)
	}
	t3.Commit()
	if _, ok := s.Snapshot()["x"]; ok {
		t.Fatal("delete not applied")
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	tx.Put("k", "mine")
	v, ok, err := tx.Get("k")
	if err != nil || !ok || v != "mine" {
		t.Fatalf("own write invisible: %v %v %v", v, ok, err)
	}
	tx.Delete("k")
	if _, ok, _ := tx.Get("k"); ok {
		t.Fatal("own delete invisible")
	}
	tx.Commit()
}

func TestSerializabilityUnderConcurrency(t *testing.T) {
	// Classic bank transfer: concurrent transfers preserve total balance.
	s := NewStore()
	init := s.Begin()
	init.Put("acct:a", 100)
	init.Put("acct:b", 100)
	init.Commit()

	var wg sync.WaitGroup
	transfer := func(from, to string, amt int) {
		defer wg.Done()
		for {
			tx := s.Begin()
			fv, _, err := tx.Get(from)
			if err != nil {
				continue // deadlock abort: retry
			}
			tv, _, err := tx.Get(to)
			if err != nil {
				continue
			}
			if err := tx.Put(from, fv.(int)-amt); err != nil {
				continue
			}
			if err := tx.Put(to, tv.(int)+amt); err != nil {
				continue
			}
			if tx.Commit() == nil {
				return
			}
		}
	}
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go transfer("acct:a", "acct:b", 5)
		go transfer("acct:b", "acct:a", 3)
	}
	wg.Wait()
	snap := s.Snapshot()
	total := snap["acct:a"].(int) + snap["acct:b"].(int)
	if total != 200 {
		t.Fatalf("total balance = %d, want 200 (isolation violated)", total)
	}
}

func Test2PCCommitAcrossPartitions(t *testing.T) {
	s1, s2 := NewStore(), NewStore()
	p1, p2 := NewStorePart("p1", s1), NewStorePart("p2", s2)
	coord := &Coordinator{}
	err := coord.Execute([]Participant{p1, p2}, map[string]map[string]any{
		"p1": {"x": 1},
		"p2": {"y": 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Snapshot()["x"] != 1 || s2.Snapshot()["y"] != 2 {
		t.Fatal("2PC writes not applied")
	}
	if coord.Commits != 1 || coord.Aborts != 0 {
		t.Fatalf("stats: %+v", coord)
	}
}

// failingPart votes no in prepare.
type failingPart struct{ name string }

func (f *failingPart) Name() string                               { return f.name }
func (f *failingPart) Prepare(tid uint64, w map[string]any) error { return errors.New("vote no") }
func (f *failingPart) Commit(tid uint64)                          {}
func (f *failingPart) Abort(tid uint64)                           {}

func Test2PCAbortsAtomically(t *testing.T) {
	s1 := NewStore()
	p1 := NewStorePart("p1", s1)
	bad := &failingPart{name: "p2"}
	coord := &Coordinator{}
	err := coord.Execute([]Participant{p1, bad}, map[string]map[string]any{
		"p1": {"x": 1},
		"p2": {"y": 2},
	})
	if err == nil {
		t.Fatal("expected abort")
	}
	if _, ok := s1.Snapshot()["x"]; ok {
		t.Fatal("aborted 2PC leaked a write")
	}
	// Locks must be released so later transactions proceed.
	tx := s1.Begin()
	if err := tx.Put("x", 9); err != nil {
		t.Fatalf("locks leaked after abort: %v", err)
	}
	tx.Commit()
	if coord.Aborts != 1 {
		t.Fatalf("stats: %+v", coord)
	}
}

func Test2PCSkipsUninvolvedParticipants(t *testing.T) {
	s1, s2 := NewStore(), NewStore()
	p1, p2 := NewStorePart("p1", s1), NewStorePart("p2", s2)
	coord := &Coordinator{}
	if err := coord.Execute([]Participant{p1, p2}, map[string]map[string]any{
		"p1": {"x": 1},
	}); err != nil {
		t.Fatal(err)
	}
	// Only p1 involved: 1 prepare + 1 commit round trips.
	if coord.RoundTrips != 2 {
		t.Fatalf("round trips = %d, want 2", coord.RoundTrips)
	}
}
