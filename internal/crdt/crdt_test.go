package crdt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hydro/internal/lattice"
)

func TestGCounterBasics(t *testing.T) {
	a := NewGCounter("r1").Inc(3)
	b := NewGCounter("r2").Inc(4)
	m := a.Merge(b)
	if m.Value() != 7 {
		t.Fatalf("merged value = %d, want 7", m.Value())
	}
	// Merging the same state twice must not double-count (idempotence).
	if m.Merge(b).Value() != 7 {
		t.Fatal("re-merge double-counted")
	}
}

func TestGCounterConcurrentIncrements(t *testing.T) {
	// Two replicas increment concurrently from a shared ancestor.
	base := NewGCounter("r1").Inc(1)
	r2 := base.Merge(NewGCounter("r2"))
	r2.Replica = "r2"
	a := base.Inc(5) // r1: 1+5
	b := r2.Inc(2)   // r2: 2, carries r1:1
	m1 := a.Merge(b)
	m2 := b.Merge(a)
	if m1.Value() != 8 || m2.Value() != 8 {
		t.Fatalf("convergent value = %d/%d, want 8", m1.Value(), m2.Value())
	}
	if !m1.Equal(m2) {
		t.Fatal("merge order changed the state")
	}
}

func TestPNCounter(t *testing.T) {
	c := NewPNCounter("r1").Inc(10).Dec(3)
	if c.Value() != 7 {
		t.Fatalf("value = %d, want 7", c.Value())
	}
	d := NewPNCounter("r2").Dec(9)
	if c.Merge(d).Value() != -2 {
		t.Fatalf("merged = %d, want -2", c.Merge(d).Value())
	}
}

func TestTwoPSetRemoveWins(t *testing.T) {
	a := NewTwoPSet[string]().Add("x")
	b := a.Remove("x")
	// Concurrent re-add on another replica...
	c := a.Add("x")
	m := b.Merge(c)
	if m.Contains("x") {
		t.Fatal("2P-set: removal must win permanently")
	}
}

func TestORSetAddWins(t *testing.T) {
	r1 := NewORSet[string]("r1").Add("x")
	r2 := NewORSet[string]("r2").Merge(r1) // r2 observes the add
	r2removed := r2.Remove("x")
	r1readd := r1.Add("x") // concurrent re-add with a fresh dot
	m := r2removed.Merge(r1readd)
	if !m.Contains("x") {
		t.Fatal("OR-set: concurrent add must survive observed-remove")
	}
	// But a remove that observed *all* dots deletes the element.
	all := m.Remove("x")
	if all.Contains("x") {
		t.Fatal("remove of all observed dots should delete")
	}
}

func TestORSetElemsDeduplicated(t *testing.T) {
	s := NewORSet[string]("r1").Add("x").Add("x").Add("y")
	if len(s.Elems()) != 2 {
		t.Fatalf("Elems = %v, want 2 distinct", s.Elems())
	}
	if s.String() != "{x, y}" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestORSetSeqAdvancesOnMerge(t *testing.T) {
	// A replica that merges state containing its own higher dots must not
	// reuse dot sequence numbers afterwards.
	r1 := NewORSet[string]("r1").Add("a").Add("b") // dots r1:1, r1:2
	fresh := NewORSet[string]("r1")                // simulates restart with lost seq
	rejoined := fresh.Merge(r1)
	after := rejoined.Add("c")
	// The dot for "c" must be r1:3, not a reused r1:1.
	removed := after.Remove("a")
	if removed.Contains("a") {
		t.Fatal("dot reuse corrupted removal semantics")
	}
	if !removed.Contains("c") {
		t.Fatal("fresh element lost")
	}
}

// Convergence property: any interleaving of merges over the same set of
// operations yields the same state (strong eventual consistency).
func TestORSetConvergenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		reps := []ORSet[int]{NewORSet[int]("a"), NewORSet[int]("b"), NewORSet[int]("c")}
		// Random local ops.
		for i := 0; i < 12; i++ {
			ri := r.Intn(len(reps))
			if r.Intn(3) == 0 {
				reps[ri] = reps[ri].Remove(r.Intn(4))
			} else {
				reps[ri] = reps[ri].Add(r.Intn(4))
			}
			// Random pairwise gossip.
			if r.Intn(2) == 0 {
				a, b := r.Intn(len(reps)), r.Intn(len(reps))
				reps[a] = reps[a].Merge(reps[b])
			}
		}
		// Full exchange: everyone merges everyone.
		final := make([]ORSet[int], len(reps))
		copy(final, reps)
		for i := range final {
			for j := range reps {
				final[i] = final[i].Merge(reps[j])
			}
		}
		for i := 1; i < len(final); i++ {
			if !final[0].Equal(final[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGCounterLawsQuick(t *testing.T) {
	f := func(a, b, c uint8) bool {
		mk := func(n uint8, rep string) GCounter { return NewGCounter(rep).Inc(uint64(n % 16)) }
		return lattice.CheckLaws([]GCounter{mk(a, "r1"), mk(b, "r2"), mk(c, "r3")}) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTwoPSetLawsQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() TwoPSet[int] {
			s := NewTwoPSet[int]()
			for i := 0; i < r.Intn(5); i++ {
				if r.Intn(2) == 0 {
					s = s.Add(r.Intn(4))
				} else {
					s = s.Remove(r.Intn(4))
				}
			}
			return s
		}
		return lattice.CheckLaws([]TwoPSet[int]{mk(), mk(), mk()}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCartBasics(t *testing.T) {
	c := NewCart("r1").AddItem("apple", 2).AddItem("pear", 1).AddItem("apple", -1)
	if c.Quantity("apple") != 1 || c.Quantity("pear") != 1 {
		t.Fatalf("quantities apple=%d pear=%d", c.Quantity("apple"), c.Quantity("pear"))
	}
	if c.Manifest() != "apple=1;pear=1" {
		t.Fatalf("manifest = %q", c.Manifest())
	}
}

func TestCartSealCheckout(t *testing.T) {
	// Replica A and B hold divergent cart states.
	a := NewCart("a").AddItem("x", 2)
	b := NewCart("b").AddItem("y", 1)
	// The client (unreplicated stage) merges what it has seen and seals.
	client := a.Merge(b)
	sealed := client.Seal(100)
	manifest, ok := sealed.Sealed()
	if !ok || manifest != "x=2;y=1" {
		t.Fatalf("sealed manifest = %q ok=%v", manifest, ok)
	}
	// Replica A receives the seal but is missing B's update: not yet out.
	aSealed := a.Merge(sealed)
	if aSealed.Manifest() != "x=2;y=1" {
		// a merged with sealed client state which contains everything.
		t.Fatalf("merge should deliver contents too, got %q", aSealed.Manifest())
	}
	if !aSealed.CheckedOut() {
		t.Fatal("replica with full contents + seal must check out")
	}
	// A replica holding only the seal register and partial contents waits.
	partial := NewCart("c").AddItem("x", 2)
	sealOnly := NewCart("client2")
	sealOnly.sealed = sealed.sealed
	sealOnly.has = true
	waiting := partial.Merge(sealOnly)
	if waiting.CheckedOut() {
		t.Fatal("replica missing y=1 must not check out yet")
	}
	done := waiting.Merge(b)
	if !done.CheckedOut() {
		t.Fatal("replica must check out once contents match the manifest")
	}
}

func TestCartMergeCommutes(t *testing.T) {
	a := NewCart("a").AddItem("x", 1)
	b := NewCart("b").AddItem("x", 2).Seal(5)
	if !a.Merge(b).Equal(b.Merge(a)) {
		t.Fatal("cart merge must commute")
	}
}

func TestCartConcurrentSealsDeterministic(t *testing.T) {
	a := NewCart("a").AddItem("x", 1).Seal(10)
	b := NewCart("b").AddItem("y", 1).Seal(10) // same stamp, different replica
	m1, _ := a.Merge(b).Sealed()
	m2, _ := b.Merge(a).Sealed()
	if m1 != m2 {
		t.Fatalf("concurrent seals resolved differently: %q vs %q", m1, m2)
	}
}
