// Package crdt implements state-based conflict-free replicated data types
// (CvRDTs) on top of the lattice algebra. CRDTs are the paper's §1.2
// "data types with ACI methods": replicas mutate locally and exchange state;
// merges converge without coordination because the state forms a
// join-semilattice.
//
// Each type carries a replica ID for mutations that must be attributed
// (counters, OR-Set dots). Merge never needs attribution.
package crdt

import (
	"fmt"
	"sort"
	"strings"

	"hydro/internal/lattice"
)

// GCounter is a grow-only counter: one Max component per replica, summed on
// read. Increments commute, so replicas converge under any delivery order.
type GCounter struct {
	Replica string
	counts  lattice.Map[string, lattice.Max[uint64]]
}

// NewGCounter returns a zero counter owned by replica.
func NewGCounter(replica string) GCounter {
	return GCounter{Replica: replica, counts: lattice.NewMap[string, lattice.Max[uint64]]()}
}

// Inc adds delta to this replica's component.
func (g GCounter) Inc(delta uint64) GCounter {
	cur, _ := g.counts.Get(g.Replica)
	return GCounter{Replica: g.Replica, counts: g.counts.Put(g.Replica, lattice.NewMax(cur.V+delta))}
}

// Value sums all replica components.
func (g GCounter) Value() uint64 {
	var total uint64
	for _, k := range g.counts.Keys() {
		v, _ := g.counts.Get(k)
		total += v.V
	}
	return total
}

// Merge takes the pointwise maximum of per-replica components. The receiver
// keeps its replica identity.
func (g GCounter) Merge(o GCounter) GCounter {
	return GCounter{Replica: g.Replica, counts: g.counts.Merge(o.counts)}
}

// LessEq is pointwise order on components.
func (g GCounter) LessEq(o GCounter) bool { return g.counts.LessEq(o.counts) }

// Equal is pointwise equality on components (replica identity is not state).
func (g GCounter) Equal(o GCounter) bool { return g.counts.Equal(o.counts) }

// PNCounter supports increment and decrement as a pair of GCounters.
type PNCounter struct {
	Pos, Neg GCounter
}

// NewPNCounter returns a zero PN-counter owned by replica.
func NewPNCounter(replica string) PNCounter {
	return PNCounter{Pos: NewGCounter(replica), Neg: NewGCounter(replica)}
}

// Inc adds delta.
func (p PNCounter) Inc(delta uint64) PNCounter {
	return PNCounter{Pos: p.Pos.Inc(delta), Neg: p.Neg}
}

// Dec subtracts delta.
func (p PNCounter) Dec(delta uint64) PNCounter {
	return PNCounter{Pos: p.Pos, Neg: p.Neg.Inc(delta)}
}

// Value returns increments minus decrements (may be negative).
func (p PNCounter) Value() int64 { return int64(p.Pos.Value()) - int64(p.Neg.Value()) }

// Merge merges both component counters.
func (p PNCounter) Merge(o PNCounter) PNCounter {
	return PNCounter{Pos: p.Pos.Merge(o.Pos), Neg: p.Neg.Merge(o.Neg)}
}

// LessEq is componentwise order.
func (p PNCounter) LessEq(o PNCounter) bool { return p.Pos.LessEq(o.Pos) && p.Neg.LessEq(o.Neg) }

// Equal is componentwise equality.
func (p PNCounter) Equal(o PNCounter) bool { return p.Pos.Equal(o.Pos) && p.Neg.Equal(o.Neg) }

// GSet is a grow-only replicated set: a thin CRDT veneer over lattice.Set.
type GSet[E comparable] struct {
	S lattice.Set[E]
}

// NewGSet returns a set with the given elements.
func NewGSet[E comparable](elems ...E) GSet[E] { return GSet[E]{S: lattice.NewSet(elems...)} }

// Add returns the set with e included.
func (g GSet[E]) Add(e E) GSet[E] { return GSet[E]{S: g.S.Add(e)} }

// Contains reports membership.
func (g GSet[E]) Contains(e E) bool { return g.S.Contains(e) }

// Merge unions the two sets.
func (g GSet[E]) Merge(o GSet[E]) GSet[E] { return GSet[E]{S: g.S.Merge(o.S)} }

// LessEq is subset order.
func (g GSet[E]) LessEq(o GSet[E]) bool { return g.S.LessEq(o.S) }

// Equal is set equality.
func (g GSet[E]) Equal(o GSet[E]) bool { return g.S.Equal(o.S) }

// TwoPSet is a two-phase set: removal wins permanently (a removed element
// can never be re-added). Both phases are grow-only sets.
type TwoPSet[E comparable] struct {
	Added, Removed lattice.Set[E]
}

// NewTwoPSet returns an empty two-phase set.
func NewTwoPSet[E comparable]() TwoPSet[E] {
	return TwoPSet[E]{Added: lattice.NewSet[E](), Removed: lattice.NewSet[E]()}
}

// Add includes e (ineffective if e was ever removed).
func (t TwoPSet[E]) Add(e E) TwoPSet[E] {
	return TwoPSet[E]{Added: t.Added.Add(e), Removed: t.Removed}
}

// Remove tombstones e permanently.
func (t TwoPSet[E]) Remove(e E) TwoPSet[E] {
	return TwoPSet[E]{Added: t.Added, Removed: t.Removed.Add(e)}
}

// Contains reports e added and never removed.
func (t TwoPSet[E]) Contains(e E) bool { return t.Added.Contains(e) && !t.Removed.Contains(e) }

// Merge unions both phases.
func (t TwoPSet[E]) Merge(o TwoPSet[E]) TwoPSet[E] {
	return TwoPSet[E]{Added: t.Added.Merge(o.Added), Removed: t.Removed.Merge(o.Removed)}
}

// LessEq is componentwise subset order.
func (t TwoPSet[E]) LessEq(o TwoPSet[E]) bool {
	return t.Added.LessEq(o.Added) && t.Removed.LessEq(o.Removed)
}

// Equal is componentwise equality.
func (t TwoPSet[E]) Equal(o TwoPSet[E]) bool {
	return t.Added.Equal(o.Added) && t.Removed.Equal(o.Removed)
}

// dot uniquely identifies one Add operation (replica, sequence).
type dot struct {
	Replica string
	Seq     uint64
}

// tagged pairs an element with the dot that added it.
type tagged[E comparable] struct {
	Elem E
	Dot  dot
}

// ORSet is an observed-remove set: Remove deletes only the add-dots it has
// observed, so a concurrent re-Add survives (add-wins semantics). This is
// the set CRDT that behaves like a sequential set under causal delivery.
type ORSet[E comparable] struct {
	Replica string
	seq     uint64
	adds    lattice.Set[tagged[E]]
	removes lattice.Set[tagged[E]]
}

// NewORSet returns an empty OR-Set owned by replica.
func NewORSet[E comparable](replica string) ORSet[E] {
	return ORSet[E]{
		Replica: replica,
		adds:    lattice.NewSet[tagged[E]](),
		removes: lattice.NewSet[tagged[E]](),
	}
}

// Add inserts e under a fresh dot.
func (s ORSet[E]) Add(e E) ORSet[E] {
	next := s.seq + 1
	return ORSet[E]{
		Replica: s.Replica,
		seq:     next,
		adds:    s.adds.Add(tagged[E]{Elem: e, Dot: dot{Replica: s.Replica, Seq: next}}),
		removes: s.removes,
	}
}

// Remove tombstones every currently observed dot for e.
func (s ORSet[E]) Remove(e E) ORSet[E] {
	rm := s.removes
	for _, t := range s.adds.Elems() {
		if t.Elem == e {
			rm = rm.Add(t)
		}
	}
	return ORSet[E]{Replica: s.Replica, seq: s.seq, adds: s.adds, removes: rm}
}

// Contains reports whether some add-dot for e is not tombstoned.
func (s ORSet[E]) Contains(e E) bool {
	for _, t := range s.adds.Elems() {
		if t.Elem == e && !s.removes.Contains(t) {
			return true
		}
	}
	return false
}

// Elems returns the live elements, deduplicated, in unspecified order.
func (s ORSet[E]) Elems() []E {
	seen := map[E]bool{}
	var out []E
	for _, t := range s.adds.Elems() {
		if !s.removes.Contains(t) && !seen[t.Elem] {
			seen[t.Elem] = true
			out = append(out, t.Elem)
		}
	}
	return out
}

// Merge unions add- and remove-dot sets. The receiver keeps its identity and
// advances its sequence past anything it has seen from itself.
func (s ORSet[E]) Merge(o ORSet[E]) ORSet[E] {
	merged := ORSet[E]{
		Replica: s.Replica,
		seq:     s.seq,
		adds:    s.adds.Merge(o.adds),
		removes: s.removes.Merge(o.removes),
	}
	for _, t := range merged.adds.Elems() {
		if t.Dot.Replica == s.Replica && t.Dot.Seq > merged.seq {
			merged.seq = t.Dot.Seq
		}
	}
	return merged
}

// LessEq is componentwise subset order on dot sets.
func (s ORSet[E]) LessEq(o ORSet[E]) bool {
	return s.adds.LessEq(o.adds) && s.removes.LessEq(o.removes)
}

// Equal is componentwise equality on dot sets.
func (s ORSet[E]) Equal(o ORSet[E]) bool {
	return s.adds.Equal(o.adds) && s.removes.Equal(o.removes)
}

// String renders live elements sorted, for stable test output.
func (s ORSet[E]) String() string {
	parts := make([]string, 0)
	for _, e := range s.Elems() {
		parts = append(parts, fmt.Sprint(e))
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}
