package crdt

import (
	"fmt"
	"sort"
	"strings"

	"hydro/internal/lattice"
)

// Cart is the Dynamo shopping cart of §7.1, built as a CRDT with an explicit
// *seal*. Item quantity changes are coordination-free PN-counter updates.
// Checkout requires agreement on the final contents; Conway's observation
// (reproduced by experiment E10) is that sealing can be decided unilaterally
// at the client, after which each replica checks out for free once its local
// contents match the sealed manifest.
type Cart struct {
	Replica string
	items   map[string]PNCounter
	// sealed is a once-set manifest: item → final quantity. It is an LWW
	// register so ties between concurrent seals resolve deterministically.
	sealed lattice.LWW[string]
	has    bool
}

// NewCart returns an empty cart owned by replica.
func NewCart(replica string) *Cart {
	return &Cart{Replica: replica, items: map[string]PNCounter{}}
}

// AddItem adjusts the quantity of item by delta (negative removes).
func (c *Cart) AddItem(item string, delta int64) *Cart {
	next := c.clone()
	ctr, ok := next.items[item]
	if !ok {
		ctr = NewPNCounter(c.Replica)
	}
	if delta >= 0 {
		ctr = ctr.Inc(uint64(delta))
	} else {
		ctr = ctr.Dec(uint64(-delta))
	}
	next.items[item] = ctr
	return next
}

// Quantity reads the current count of item.
func (c *Cart) Quantity(item string) int64 {
	ctr, ok := c.items[item]
	if !ok {
		return 0
	}
	return ctr.Value()
}

// Manifest renders current contents as a canonical string "item=qty;...",
// with zero-quantity items elided.
func (c *Cart) Manifest() string {
	keys := make([]string, 0, len(c.items))
	for k := range c.items {
		if c.items[k].Value() != 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, c.items[k].Value())
	}
	return strings.Join(parts, ";")
}

// Seal freezes the cart's contents as of the given logical stamp. Sealing is
// the *only* decision in the cart's lifecycle; it is made unilaterally (the
// browser in Conway's formulation), so no replica coordination is needed.
func (c *Cart) Seal(stamp uint64) *Cart {
	next := c.clone()
	next.sealed = lattice.NewLWW(stamp, c.Replica, c.Manifest(), func(a, b string) bool { return a == b })
	next.has = true
	return next
}

// Sealed returns the sealed manifest, if any.
func (c *Cart) Sealed() (string, bool) {
	if !c.has {
		return "", false
	}
	return c.sealed.Val, true
}

// CheckedOut reports that this replica can complete checkout: a seal exists
// and local contents have caught up to the sealed manifest. This predicate
// is monotone — once true it stays true — so replicas may act on it
// independently.
func (c *Cart) CheckedOut() bool {
	m, ok := c.Sealed()
	return ok && c.Manifest() == m
}

// Merge merges item counters pointwise and the seal register.
func (c *Cart) Merge(o *Cart) *Cart {
	next := c.clone()
	for k, v := range o.items {
		if mine, ok := next.items[k]; ok {
			next.items[k] = mine.Merge(v)
		} else {
			next.items[k] = v
		}
	}
	if o.has {
		if next.has {
			next.sealed = next.sealed.Merge(o.sealed)
		} else {
			next.sealed = o.sealed
			next.has = true
		}
	}
	return next
}

// Equal reports equal contents and seal state.
func (c *Cart) Equal(o *Cart) bool {
	if len(c.items) != len(o.items) || c.has != o.has {
		return false
	}
	for k, v := range c.items {
		ov, ok := o.items[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	if c.has && !c.sealed.Equal(o.sealed) {
		return false
	}
	return true
}

// LessEq reports lattice order on carts.
func (c *Cart) LessEq(o *Cart) bool { return c.Merge(o).Equal(o) }

// WithoutItems returns a cart carrying only the seal register — the shape
// of a message that delivers the checkout decision ahead of (reordered)
// content updates.
func (c *Cart) WithoutItems() *Cart {
	return &Cart{Replica: c.Replica, items: map[string]PNCounter{}, sealed: c.sealed, has: c.has}
}

func (c *Cart) clone() *Cart {
	items := make(map[string]PNCounter, len(c.items))
	for k, v := range c.items {
		items[k] = v
	}
	return &Cart{Replica: c.Replica, items: items, sealed: c.sealed, has: c.has}
}
