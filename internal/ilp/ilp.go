// Package ilp is a small integer-programming solver: bounded integer
// variables, linear constraints, linear objective, solved by depth-first
// branch-and-bound with feasibility propagation and objective pruning. It
// is the engine behind the target facet's deployment mapping (§9.1), which
// the paper formulates exactly as an integer program over machine counts.
package ilp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint comparator.
type Op int

// Comparators.
const (
	LE Op = iota // Σ coef·x ≤ rhs
	GE           // Σ coef·x ≥ rhs
	EQ           // Σ coef·x = rhs
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "=="
	}
}

// Constraint is a linear constraint over the problem's variables.
type Constraint struct {
	Name  string
	Coefs []float64
	Op    Op
	RHS   float64
}

// Problem is a minimization ILP over bounded integer variables.
type Problem struct {
	names       []string
	lower       []int
	upper       []int
	objective   []float64
	constraints []Constraint
}

// New returns an empty problem.
func New() *Problem { return &Problem{} }

// AddVar declares an integer variable in [lower, upper] with the given
// objective coefficient (minimized). Returns the variable index.
func (p *Problem) AddVar(name string, lower, upper int, objCoef float64) int {
	p.names = append(p.names, name)
	p.lower = append(p.lower, lower)
	p.upper = append(p.upper, upper)
	p.objective = append(p.objective, objCoef)
	return len(p.names) - 1
}

// NumVars returns the number of declared variables.
func (p *Problem) NumVars() int { return len(p.names) }

// AddConstraint adds Σ coefs·x (op) rhs. Coefs must cover all declared
// variables (pad with zeros).
func (p *Problem) AddConstraint(name string, coefs []float64, op Op, rhs float64) {
	c := Constraint{Name: name, Coefs: make([]float64, len(p.names)), Op: op, RHS: rhs}
	copy(c.Coefs, coefs)
	p.constraints = append(p.constraints, c)
}

// ErrInfeasible is returned when no assignment satisfies the constraints.
var ErrInfeasible = errors.New("ilp: infeasible")

// Solution is an optimal assignment.
type Solution struct {
	Values    []int
	Objective float64
}

// Value returns the assignment of the named variable.
func (s Solution) Value(p *Problem, name string) int {
	for i, n := range p.names {
		if n == name {
			return s.Values[i]
		}
	}
	panic(fmt.Sprintf("ilp: unknown variable %q", name))
}

// Solve minimizes the objective by branch-and-bound. Search effort is
// bounded by maxNodes (0 = default 5M); exceeding it returns an error so
// callers can relax the model.
func (p *Problem) Solve(maxNodes int) (Solution, error) {
	if maxNodes <= 0 {
		maxNodes = 5_000_000
	}
	n := len(p.names)
	x := make([]int, n)
	best := Solution{Objective: math.Inf(1)}
	found := false
	nodes := 0

	// Precompute per-constraint extreme contributions of each variable,
	// used for feasibility bounds.
	var rec func(i int, objSoFar float64) error
	rec = func(i int, objSoFar float64) error {
		nodes++
		if nodes > maxNodes {
			return fmt.Errorf("ilp: node budget exceeded (%d)", maxNodes)
		}
		// Objective bound: optimistic completion of remaining vars.
		bound := objSoFar
		for j := i; j < n; j++ {
			c := p.objective[j]
			if c >= 0 {
				bound += c * float64(p.lower[j])
			} else {
				bound += c * float64(p.upper[j])
			}
		}
		if found && bound >= best.Objective {
			return nil
		}
		// Feasibility bound per constraint.
		for _, con := range p.constraints {
			fixed := 0.0
			for j := 0; j < i; j++ {
				fixed += con.Coefs[j] * float64(x[j])
			}
			minRest, maxRest := 0.0, 0.0
			for j := i; j < n; j++ {
				lo := con.Coefs[j] * float64(p.lower[j])
				hi := con.Coefs[j] * float64(p.upper[j])
				minRest += math.Min(lo, hi)
				maxRest += math.Max(lo, hi)
			}
			switch con.Op {
			case LE:
				if fixed+minRest > con.RHS+1e-9 {
					return nil
				}
			case GE:
				if fixed+maxRest < con.RHS-1e-9 {
					return nil
				}
			case EQ:
				if fixed+minRest > con.RHS+1e-9 || fixed+maxRest < con.RHS-1e-9 {
					return nil
				}
			}
		}
		if i == n {
			if !found || objSoFar < best.Objective {
				best = Solution{Values: append([]int{}, x...), Objective: objSoFar}
				found = true
			}
			return nil
		}
		// Branch: try values in objective-friendly order.
		lo, hi := p.lower[i], p.upper[i]
		if p.objective[i] >= 0 {
			for v := lo; v <= hi; v++ {
				x[i] = v
				if err := rec(i+1, objSoFar+p.objective[i]*float64(v)); err != nil {
					return err
				}
			}
		} else {
			for v := hi; v >= lo; v-- {
				x[i] = v
				if err := rec(i+1, objSoFar+p.objective[i]*float64(v)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := rec(0, 0); err != nil {
		return Solution{}, err
	}
	if !found {
		return Solution{}, ErrInfeasible
	}
	return best, nil
}

// String renders the problem for diagnostics.
func (p *Problem) String() string {
	s := "min "
	for i, c := range p.objective {
		if i > 0 {
			s += " + "
		}
		s += fmt.Sprintf("%.3g·%s", c, p.names[i])
	}
	s += "\n"
	for _, con := range p.constraints {
		s += "  " + con.Name + ": "
		first := true
		for i, c := range con.Coefs {
			if c == 0 {
				continue
			}
			if !first {
				s += " + "
			}
			s += fmt.Sprintf("%.3g·%s", c, p.names[i])
			first = false
		}
		s += fmt.Sprintf(" %s %.3g\n", con.Op, con.RHS)
	}
	return s
}
