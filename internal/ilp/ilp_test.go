package ilp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestSimpleMinimization(t *testing.T) {
	// min 2x + 3y  s.t.  x + y >= 5, x,y in [0,10]
	p := New()
	x := p.AddVar("x", 0, 10, 2)
	y := p.AddVar("y", 0, 10, 3)
	p.AddConstraint("cover", []float64{1, 1}, GE, 5)
	sol, err := p.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Values[x] != 5 || sol.Values[y] != 0 || sol.Objective != 10 {
		t.Fatalf("solution = %v obj=%v, want x=5 y=0 obj=10", sol.Values, sol.Objective)
	}
}

func TestEqualityAndLE(t *testing.T) {
	// min x + y  s.t.  x == 3, y <= 2, x + y >= 5
	p := New()
	p.AddVar("x", 0, 10, 1)
	p.AddVar("y", 0, 10, 1)
	p.AddConstraint("fix", []float64{1, 0}, EQ, 3)
	p.AddConstraint("cap", []float64{0, 1}, LE, 2)
	p.AddConstraint("cover", []float64{1, 1}, GE, 5)
	sol, err := p.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value(p, "x") != 3 || sol.Value(p, "y") != 2 {
		t.Fatalf("solution = %v", sol.Values)
	}
}

func TestInfeasible(t *testing.T) {
	p := New()
	p.AddVar("x", 0, 3, 1)
	p.AddConstraint("impossible", []float64{1}, GE, 10)
	if _, err := p.Solve(0); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want infeasible", err)
	}
}

func TestNegativeObjectiveCoefficients(t *testing.T) {
	// min -x (i.e. maximize x) s.t. x <= 7.
	p := New()
	p.AddVar("x", 0, 100, -1)
	p.AddConstraint("cap", []float64{1}, LE, 7)
	sol, err := p.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value(p, "x") != 7 {
		t.Fatalf("x = %d, want 7", sol.Value(p, "x"))
	}
}

func TestKnapsackStyle(t *testing.T) {
	// Three item types with value/weight; maximize value under capacity.
	// min -(60a + 100b + 120c) s.t. 10a + 20b + 30c <= 50, binary vars.
	p := New()
	p.AddVar("a", 0, 1, -60)
	p.AddVar("b", 0, 1, -100)
	p.AddVar("c", 0, 1, -120)
	p.AddConstraint("capacity", []float64{10, 20, 30}, LE, 50)
	sol, err := p.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != -220 { // b + c
		t.Fatalf("objective = %v, want -220", sol.Objective)
	}
}

func TestNodeBudget(t *testing.T) {
	p := New()
	for i := 0; i < 8; i++ {
		p.AddVar("v", 0, 9, 0) // flat objective: no pruning help
	}
	p.AddConstraint("sum", []float64{1, 1, 1, 1, 1, 1, 1, 1}, EQ, 36)
	if _, err := p.Solve(10); err == nil {
		t.Fatal("node budget not enforced")
	}
}

// Property: branch-and-bound matches brute force on random small problems.
func TestMatchesBruteForceQuick(t *testing.T) {
	f := func(c1, c2, a1, a2, b uint8) bool {
		o1, o2 := float64(c1%5)+1, float64(c2%5)+1
		w1, w2 := float64(a1%4)+1, float64(a2%4)+1
		rhs := float64(b%20) + 1
		p := New()
		p.AddVar("x", 0, 8, o1)
		p.AddVar("y", 0, 8, o2)
		p.AddConstraint("ge", []float64{w1, w2}, GE, rhs)
		sol, err := p.Solve(0)

		bestObj := math.Inf(1)
		feasible := false
		for x := 0; x <= 8; x++ {
			for y := 0; y <= 8; y++ {
				if w1*float64(x)+w2*float64(y) >= rhs {
					feasible = true
					obj := o1*float64(x) + o2*float64(y)
					if obj < bestObj {
						bestObj = obj
					}
				}
			}
		}
		if !feasible {
			return errors.Is(err, ErrInfeasible)
		}
		return err == nil && math.Abs(sol.Objective-bestObj) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProblemString(t *testing.T) {
	p := New()
	p.AddVar("x", 0, 5, 2)
	p.AddConstraint("c", []float64{1}, GE, 3)
	s := p.String()
	if s == "" || len(s) < 10 {
		t.Fatalf("String() = %q", s)
	}
}
