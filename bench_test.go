// Benchmarks regenerating every experiment in DESIGN.md §4. Each benchmark
// wraps the corresponding experiments.RunE* table generator; custom metrics
// expose the headline number of each table so `go test -bench` output reads
// as the paper-shape summary. Full tables: `go run ./cmd/benchtab`.
package hydro

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"hydro/internal/datalog"
	"hydro/internal/experiments"
	"hydro/internal/kvs"
	"hydro/internal/transducer"
)

// BenchmarkE1CovidEquivalence: the compiled Fig-3 application's end-to-end
// operation throughput on one transducer.
func BenchmarkE1CovidEquivalence(b *testing.B) {
	c := MustCompile(CovidSource, Options{
		UDFs: map[string]UDF{
			"covid_predict": func(args []any) any { return 0.5 },
		},
	})
	rt, err := c.Instantiate("bench", 1)
	if err != nil {
		b.Fatal(err)
	}
	rt.SetDelay(func(r *rand.Rand) int { return 1 })
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch r.Intn(3) {
		case 0:
			rt.Inject("add_person", Tuple{int64(r.Intn(64)), "us"})
		case 1:
			rt.Inject("add_contact", Tuple{int64(r.Intn(64)), int64(r.Intn(64))})
		case 2:
			rt.Inject("vaccinate", Tuple{int64(r.Intn(64))})
		}
		rt.Tick()
	}
}

// BenchmarkE2CalmScaling reports the coordination tax: virtual latency of a
// Paxos-serialized op over a gossiped monotone op at 3 replicas.
func BenchmarkE2CalmScaling(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		t := experiments.RunE2([]int{3}, 5)
		ratio = parseRatio(t.Rows[0][3])
	}
	b.ReportMetric(ratio, "paxos/monotone")
}

// BenchmarkE3ChestnutLayout reports the synthesized-layout speedup over the
// naive heap on the §5.2 lookup workload.
func BenchmarkE3ChestnutLayout(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		t := experiments.RunE3([]int{20000}, 100)
		speedup = parseRatio(t.Rows[1][4])
	}
	b.ReportMetric(speedup, "speedup×")
}

// BenchmarkE4Availability reports availability with 2 of 3 AZs failed
// under the f=2 spec (expected 100).
func BenchmarkE4Availability(b *testing.B) {
	var avail float64
	for i := 0; i < b.N; i++ {
		t := experiments.RunE4(10)
		avail = parsePercent(t.Rows[2][3])
	}
	b.ReportMetric(avail, "%avail@2failed")
}

// BenchmarkE5ConsistencySpectrum reports the per-op virtual latency of the
// serializable tier relative to eventual.
func BenchmarkE5ConsistencySpectrum(b *testing.B) {
	var serializable, eventual float64
	for i := 0; i < b.N; i++ {
		t := experiments.RunE5(5)
		eventual = parseFloat(t.Rows[0][2])
		serializable = parseFloat(t.Rows[2][2])
	}
	b.ReportMetric(serializable/eventual, "serializable/eventual")
}

// BenchmarkE6DeploymentILP solves the Fig 3 deployment integer program.
func BenchmarkE6DeploymentILP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunE6()
	}
}

// BenchmarkE7MPICollectives reports tree-vs-naive bcast completion at n=64.
func BenchmarkE7MPICollectives(b *testing.B) {
	var naive, tree float64
	for i := 0; i < b.N; i++ {
		t := experiments.RunE7([]int{64})
		for _, row := range t.Rows {
			if row[0] == "bcast" && row[2] == "naive" {
				naive = parseFloat(strings.TrimSuffix(row[4], "µs"))
			}
			if row[0] == "bcast" && row[2] == "tree" {
				tree = parseFloat(strings.TrimSuffix(row[4], "µs"))
			}
		}
	}
	b.ReportMetric(naive/tree, "naive/tree")
}

// BenchmarkE8Differential reports the semi-naive speedup over naive
// re-derivation for transitive closure.
func BenchmarkE8Differential(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		t := experiments.RunE8([]int{96})
		speedup = parseRatio(t.Rows[0][4])
	}
	b.ReportMetric(speedup, "seminaive×")
}

// BenchmarkE9AnnaScaling reports the scaling-efficiency advantage of the
// coordination-free sharded store over the locked map at 8 workers: how
// much of the 8× ideal each design realizes relative to its own 1-worker
// throughput. The paper's "KVS for any scale" claim is about this shape.
func BenchmarkE9AnnaScaling(b *testing.B) {
	var annaScale, lockScale float64
	for i := 0; i < b.N; i++ {
		t := experiments.RunE9([]int{8}, 5000)
		annaScale = parseRatio(t.Rows[0][3])
		lockScale = parseRatio(t.Rows[1][3])
	}
	b.ReportMetric(annaScale, "anna-scale×")
	b.ReportMetric(lockScale, "locked-scale×")
}

// BenchmarkE9AnnaPut isolates the sharded store's put path.
func BenchmarkE9AnnaPut(b *testing.B) {
	s := kvs.NewStore(4, 1)
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put("k"+strconv.Itoa(i%512), kvs.NewValue(uint64(i), "w", "v"))
	}
}

// BenchmarkE10CartSealing reports consensus messages avoided per checkout
// by client-side sealing.
func BenchmarkE10CartSealing(b *testing.B) {
	var msgs float64
	for i := 0; i < b.N; i++ {
		t := experiments.RunE10(5)
		msgs = parseFloat(t.Rows[1][2]) / 5
	}
	b.ReportMetric(msgs, "consensus-msgs-avoided/checkout")
}

// BenchmarkE11Typecheck measures the analyzer over the COVID program.
func BenchmarkE11Typecheck(b *testing.B) {
	p, err := Parse(CovidSource)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(p)
	}
}

// BenchmarkE12LiftedRuntimes measures actor message throughput on the
// transducer.
func BenchmarkE12LiftedRuntimes(b *testing.B) {
	t := experiments.RunE12(500)
	_ = t
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunE12(200)
	}
}

// BenchmarkCompile measures the full Hydrolysis pipeline on the COVID
// program (parse → check → analyze → facet compilation).
func BenchmarkCompile(b *testing.B) {
	opts := Options{UDFs: map[string]UDF{"covid_predict": func(args []any) any { return 0.0 }}}
	for i := 0; i < b.N; i++ {
		if _, err := Compile(CovidSource, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatalogTC measures raw semi-naive transitive closure.
func BenchmarkDatalogTC(b *testing.B) {
	rules := []datalog.Rule{
		{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}},
			Body: []datalog.Literal{{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}}},
		},
		{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("z")}},
			Body: []datalog.Literal{
				{Atom: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}},
				{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("y"), datalog.V("z")}}},
			},
		},
	}
	prog, err := datalog.NewProgram(rules...)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := datalog.NewDatabase()
		e := db.Ensure("edge", 2)
		for j := 0; j < 64; j++ {
			e.Insert(datalog.Tuple{int64(j), int64(j + 1)})
		}
		if _, err := prog.Eval(db); err != nil {
			b.Fatal(err)
		}
	}
}

// tickBenchRuntime builds a transducer with a transitive-closure query
// over an edge table, prebuilt with 8 disjoint 64-node chains — the
// small-delta/large-DB tick workload of E13.
func tickBenchRuntime(b *testing.B, incremental bool) *transducer.Runtime {
	b.Helper()
	rt := transducer.New("bench", 1)
	rt.SetDelay(func(r *rand.Rand) int { return 1 })
	rt.RegisterTable(transducer.TableSchema{Name: "edge", Arity: 2})
	prog, err := datalog.NewProgram(
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}},
			Body: []datalog.Literal{{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}}},
		},
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("z")}},
			Body: []datalog.Literal{
				{Atom: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}},
				{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("y"), datalog.V("z")}}},
			},
		},
	)
	if err != nil {
		b.Fatal(err)
	}
	if incremental {
		if err := rt.RegisterQueriesIncremental(prog); err != nil {
			b.Fatal(err)
		}
	} else {
		rt.RegisterQueries(prog)
	}
	rt.RegisterHandler("add_edge", func(tx *transducer.Tx, msg transducer.Message) { tx.MergeTuple("edge", msg.Payload) })
	var sink int
	rt.RegisterHandler("probe", func(tx *transducer.Tx, msg transducer.Message) {
		sink += len(tx.QueryWhere("path", []int{0}, []any{msg.Payload[0]}))
	})
	for c := 0; c < 8; c++ {
		for i := int64(0); i < 64; i++ {
			rt.Inject("add_edge", datalog.Tuple{int64(c*1000) + i, int64(c*1000) + i + 1})
		}
	}
	rt.Tick()
	return rt
}

// tickSmallDelta measures the amortized cost of one tick that merges one
// fresh edge and reads the path query — O(database) per tick under full
// re-evaluation, O(delta) under cross-tick incremental maintenance.
func tickSmallDelta(b *testing.B, incremental bool) {
	rt := tickBenchRuntime(b, incremental)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := int64(1_000_000 + 2*i)
		rt.Inject("add_edge", datalog.Tuple{u, u + 1})
		rt.Inject("probe", datalog.Tuple{u})
		rt.Tick()
	}
}

// BenchmarkTickSmallDeltaFullEval / BenchmarkTickSmallDeltaIncremental:
// the headline pair of this PR (ISSUE 2); BENCH_1.json records both so the
// perf trajectory tracks full vs incremental tick costs.
func BenchmarkTickSmallDeltaFullEval(b *testing.B)    { tickSmallDelta(b, false) }
func BenchmarkTickSmallDeltaIncremental(b *testing.B) { tickSmallDelta(b, true) }

// BenchmarkE13IncrementalTicks reports the amortized full/incremental tick
// cost ratio from the E13 experiment table.
func BenchmarkE13IncrementalTicks(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		t := experiments.RunE13(6, 200)
		speedup = parseRatio(t.Rows[1][4])
	}
	b.ReportMetric(speedup, "incremental×")
}

func parseFloat(s string) float64 {
	f, _ := strconv.ParseFloat(strings.TrimSpace(s), 64)
	return f
}

func parseRatio(s string) float64 {
	return parseFloat(strings.TrimSuffix(s, "×"))
}

func parsePercent(s string) float64 {
	return parseFloat(strings.TrimSuffix(s, "%"))
}
