// Command hydroc is the Hydrolysis compiler front end: it parses a
// HydroLogic source file, runs semantic checks and the monotonicity
// typechecker, and prints the compilation artifacts per facet — the
// human-readable intermediate output the paper's "evolutionary" story
// depends on (programmers inspect and hand-tune what the compiler decided).
//
// Usage:
//
//	hydroc file.hl        # compile a file
//	hydroc -covid         # compile the built-in COVID example
package main

import (
	"flag"
	"fmt"
	"os"

	"hydro/internal/consistency"
	"hydro/internal/hlang"
	"hydro/internal/hydrolysis"
)

func main() {
	covid := flag.Bool("covid", false, "compile the built-in COVID example")
	format := flag.Bool("fmt", false, "print the canonical formatting of the program and exit")
	flag.Parse()

	var src string
	switch {
	case *covid:
		src = hlang.CovidSource
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: hydroc [-covid] [file.hl]")
		os.Exit(2)
	}

	prog, err := hlang.Parse(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compile error: %v\n", err)
		os.Exit(1)
	}
	if *format {
		fmt.Print(hlang.Format(prog))
		return
	}
	// Stub every declared UDF so facet compilation can proceed; codegen
	// for real deployments supplies implementations.
	udfs := map[string]hydrolysis.UDF{}
	for _, u := range prog.UDFs {
		udfs[u.Name] = func(args []any) any { return nil }
	}
	c, err := hydrolysis.CompileProgram(prog, hydrolysis.Options{UDFs: udfs})
	if err != nil {
		fmt.Fprintf(os.Stderr, "compile error: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("program: %d tables, %d vars, %d queries, %d handlers, %d udfs\n\n",
		len(prog.Tables), len(prog.Vars), len(prog.Queries), len(prog.Handlers), len(prog.UDFs))

	fmt.Println("— P: program semantics (datalog rules) —")
	for _, r := range c.Queries.Rules {
		fmt.Println("  " + r.String())
	}

	fmt.Println("\n— monotonicity analysis (§8.2) —")
	fmt.Print(indent(c.Analysis.Report()))

	fmt.Println("\n— C: consistency mechanisms (§7.2) —")
	fmt.Print(indent(consistency.Report(c.Choices)))

	fmt.Println("\n— A: availability specs (§6) —")
	for _, h := range prog.Handlers {
		s := prog.AvailabilityFor(h.Name)
		fmt.Printf("  %-14s tolerate %d failures across %s domains\n", h.Name, s.Failures, s.Domain)
	}

	fmt.Println("\n— data model: synthesized layouts (§5) —")
	for table, d := range c.Layouts {
		fmt.Printf("  %-14s %s\n", table, d)
	}

	fmt.Println("\n— T: optimization targets (§9) —")
	for _, h := range prog.Handlers {
		s := prog.TargetFor(h.Name)
		fmt.Printf("  %-14s latency≤%.0fms cost≤%.2f processor=%s\n",
			h.Name, s.LatencyMs, s.Cost, orDefault(s.Processor, "any"))
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}
