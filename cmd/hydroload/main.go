// Command hydroload is the open-loop load generator for the serving
// front-end (internal/serve): it offers requests against the paper's COVID
// pipeline at a fixed arrival rate — independent of completions, so queue
// growth and shedding are visible instead of hidden by coordinated
// omission — with zipfian key skew, and reports the per-request
// enqueue → flush → eval → respond latency breakdown (p50/p90/p99), the
// batching/backpressure counters, and the runtime tick-phase profile.
//
// Usage:
//
//	hydroload -n 20000 -rate 50000 -zipf-s 1.2 -keys 5000 -csv timings.csv
//	benchtab -timings timings.csv   # re-render the summary table offline
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"hydro/internal/datalog"
	"hydro/internal/hlang"
	"hydro/internal/hydrolysis"
	"hydro/internal/serve"
	"hydro/internal/transducer"
)

func main() {
	var (
		n      = flag.Int("n", 20000, "requests to offer")
		rate   = flag.Float64("rate", 50000, "offered arrival rate (requests/second, open loop)")
		seed   = flag.Int64("seed", 1, "workload and runtime seed")
		keys   = flag.Int("keys", 5000, "person-ID universe")
		zipfS  = flag.Float64("zipf-s", 1.2, "zipf skew exponent (>1)")
		zipfV  = flag.Float64("zipf-v", 1.0, "zipf value offset (>=1)")
		batch      = flag.Int("batch", 128, "serve batch size (MaxBatch)")
		wait       = flag.Duration("wait", 500*time.Microsecond, "serve flush deadline (MaxWait)")
		queue      = flag.Int("queue", 1024, "admission queue depth")
		policy     = flag.String("policy", "shed", "backpressure policy when the queue fills: shed|block")
		lanes      = flag.Bool("lanes", true, "route serializable mailboxes through their own admission lane")
		deadline   = flag.Duration("deadline", 0, "per-request deadline (0 = none): older queued requests are shed")
		quota      = flag.String("quota", "", "per-mailbox admission quotas, e.g. 'vaccinate=8,diagnosed=64'")
		singleLoop = flag.Bool("single-loop", false, "collapse the collect/eval pipeline onto one goroutine (A/B baseline)")
		csvOut     = flag.String("csv", "", "write the per-request timing CSV to this file")
	)
	flag.Parse()
	if *zipfS <= 1 || *zipfV < 1 || *keys < 2 {
		fatal(fmt.Errorf("need -zipf-s > 1, -zipf-v >= 1, -keys >= 2"))
	}
	pol := serve.Shed
	switch *policy {
	case "shed":
	case "block":
		pol = serve.Block
	default:
		fatal(fmt.Errorf("unknown -policy %q", *policy))
	}
	quotas := map[string]int{}
	if *quota != "" {
		for _, kv := range strings.Split(*quota, ",") {
			mb, val, ok := strings.Cut(kv, "=")
			nq, err := strconv.Atoi(val)
			if !ok || err != nil || nq <= 0 {
				fatal(fmt.Errorf("bad -quota entry %q (want mailbox=n)", kv))
			}
			quotas[mb] = nq
		}
	}

	c, err := hydrolysis.Compile(hlang.CovidSource, hydrolysis.Options{
		UDFs: map[string]hydrolysis.UDF{
			"covid_predict": func(args []any) any { return float64(args[0].(int64)%100) / 100.0 },
		},
	})
	if err != nil {
		fatal(err)
	}
	rt, err := c.Instantiate("serve1", *seed)
	if err != nil {
		fatal(err)
	}
	rt.SetDelay(func(r *rand.Rand) int { return 1 })

	timings := make([]serve.RequestTiming, 0, *n)
	alerts := 0
	s := serve.New(rt, serve.Config{
		MaxBatch:   *batch,
		MaxWait:    *wait,
		QueueDepth: *queue,
		Policy:     pol,
		// vaccinate is the pipeline's serializable handler: it must tick
		// alone or concurrent decrements collapse into one.
		SerialMailboxes: []string{"vaccinate"},
		Lanes:           *lanes,
		MailboxQuota:    quotas,
		DefaultDeadline: *deadline,
		NoPipeline:      *singleLoop,
		DrainMailboxes:  []string{"alert", "trace_response"},
		OnDrain: func(mailbox string, msgs []transducer.Message) {
			if mailbox == "alert" {
				alerts += len(msgs)
			}
		},
		OnTiming: func(t serve.RequestTiming) { timings = append(timings, t) },
	})

	rng := rand.New(rand.NewSource(*seed))
	zipf := rand.NewZipf(rng, *zipfS, *zipfV, uint64(*keys-1))
	countries := []string{"us", "fr", "in", "br", "jp"}
	mix := func() serve.Request {
		pid := int64(zipf.Uint64())
		switch k := rng.Intn(100); {
		case k < 20:
			return serve.Request{Mailbox: "add_person", Payload: datalog.Tuple{pid, countries[rng.Intn(len(countries))]}}
		case k < 70:
			return serve.Request{Mailbox: "add_contact", Payload: datalog.Tuple{pid, int64(zipf.Uint64())}}
		case k < 85:
			return serve.Request{Mailbox: "diagnosed", Payload: datalog.Tuple{pid}}
		case k < 95:
			return serve.Request{Mailbox: "likelihood", Payload: datalog.Tuple{pid}}
		default:
			return serve.Request{Mailbox: "vaccinate", Payload: datalog.Tuple{pid}}
		}
	}

	start := time.Now()
	interval := float64(time.Second) / *rate
	shed := 0
	for i := 0; i < *n; i++ {
		// Open loop: arrival i is due at start + i/rate no matter how the
		// server is doing; we never wait for completions.
		if d := time.Until(start.Add(time.Duration(float64(i) * interval))); d > 0 {
			time.Sleep(d)
		}
		if _, err := s.Submit(mix()); err != nil {
			if errors.Is(err, serve.ErrOverload) || errors.Is(err, serve.ErrOverQuota) {
				shed++
				continue
			}
			fatal(err)
		}
	}
	offerWall := time.Since(start)
	// Under Block, Close drains and serves the whole backlog; under Shed it
	// abandons queued requests with ErrClosed (reported as closed-unserved
	// below) — open loop: the measurement window is the offered load.
	s.Close()
	wall := time.Since(start)

	m := s.Metrics()
	fmt.Printf("hydroload: offered %d requests at %.0f/s (zipf s=%.2f over %d keys, seed %d), %d admitted, %d shed\n",
		*n, *rate, *zipfS, *keys, *seed, m.Submitted, shed)
	fmt.Printf("served in %v (offer window %v): %.0f responses/s, %d alerts fanned out, incremental=%v\n",
		wall.Round(time.Millisecond), offerWall.Round(time.Millisecond),
		float64(m.Responded)/wall.Seconds(), alerts, rt.IncrementalQueries())
	fmt.Printf("batches=%d (size=%d deadline=%d serial=%d) rejected=%d retried=%d unsettled=%d queue high-water=%d\n",
		m.Batches, m.SizeFlushes, m.DeadlineFlushes, m.SerialFlushes,
		m.RejectedBatches, m.Retried, m.Unsettled, m.QueueHighWater)
	fmt.Printf("admission: lanes=%v over-quota=%d deadline-shed=%d closed-unserved=%d\n",
		*lanes, m.OverQuota, m.DeadlineShed, m.ClosedUnserved)
	if *singleLoop {
		fmt.Printf("pipeline: single-loop baseline (no overlap), eval busy %v\n",
			time.Duration(m.EvalBusyNs).Round(time.Millisecond))
	} else {
		// Overlap health: collect-wait is eval stalled on the collector;
		// handoff-block is the collector stalled on eval (the backpressure
		// path). At saturation collect-wait should be well under eval busy.
		fmt.Printf("pipeline: eval busy %v, collect-wait %v, handoff-block %v (overlap engaged: %v)\n",
			time.Duration(m.EvalBusyNs).Round(time.Millisecond),
			time.Duration(m.CollectWaitNs).Round(time.Millisecond),
			time.Duration(m.HandoffBlockNs).Round(time.Millisecond),
			m.CollectWaitNs < m.EvalBusyNs)
	}
	if m.Ticks > 0 {
		perTick := func(ns int64) time.Duration { return time.Duration(ns / int64(m.Ticks)) }
		fmt.Printf("tick phases (mean over %d ticks): deliver=%v snapshot=%v handlers=%v apply=%v\n",
			m.Ticks, perTick(m.TickDeliverNs), perTick(m.TickSnapshotNs),
			perTick(m.TickHandlersNs), perTick(m.TickApplyNs))
	}
	fmt.Println()
	fmt.Print(serve.Summarize(timings).Render())

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		if err := serve.WriteCSV(f, timings); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %d timing rows to %s\n", len(timings), *csvOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hydroload:", err)
	os.Exit(1)
}
