// Command covidd deploys the COVID tracker across a simulated 3-AZ cluster:
// one transducer replica per availability zone (the availability facet's
// f=2 placement), clients spread across zones, and monotone contact-graph
// state converging through replicated handler execution. It then injects an
// AZ failure and shows the service staying available — the full-stack demo
// of the Hydro pipeline.
package main

import (
	"fmt"
	"math/rand"

	"hydro/internal/cluster"
	"hydro/internal/datalog"
	"hydro/internal/hlang"
	"hydro/internal/hydrolysis"
	"hydro/internal/simnet"
	"hydro/internal/transducer"
)

func main() {
	compiled, err := hydrolysis.Compile(hlang.CovidSource, hydrolysis.Options{
		UDFs: map[string]hydrolysis.UDF{
			"covid_predict": func(args []any) any { return float64(args[0].(int64)%100) / 100.0 },
		},
	})
	if err != nil {
		panic(err)
	}

	topo := cluster.NewTopology(3, 1, 1, cluster.ClassSmall)
	c := cluster.New(topo, simnet.Config{Seed: 42, MinLatency: 100, MaxLatency: 300, CrossDomainPenalty: 700})

	// Availability facet: spread f+1 = 3 replicas across AZs.
	spec := compiled.Program.AvailabilityFor("add_contact")
	machines, err := topo.SpreadAcross(cluster.Domain(spec.Domain), spec.Failures+1)
	if err != nil {
		panic(err)
	}
	var rts []*transducer.Runtime
	var ids []string
	for i, m := range machines {
		rt, err := compiled.Instantiate(m.ID, int64(i+1))
		if err != nil {
			panic(err)
		}
		rt.SetDelay(func(r *rand.Rand) int { return 1 })
		c.Host(m.ID, rt)
		rts = append(rts, rt)
		ids = append(ids, m.ID)
	}
	fmt.Printf("deployed %d replicas across AZs: %v\n", len(ids), ids)

	// Clients write to their nearest replica; monotone handlers need no
	// coordination, so each replica accepts writes independently and we
	// forward contact merges peer-to-peer (compiled send fan-out).
	inject := func(replicaIdx int, handler string, args ...any) {
		rt := rts[replicaIdx%len(rts)]
		rt.Inject(handler, datalog.Tuple(args))
		// Replicate the monotone op to peers (what Hydrolysis emits for
		// MechNone handlers: plain async fan-out of the original event).
		for i, peer := range rts {
			if i != replicaIdx%len(rts) {
				peer.Inject(handler, datalog.Tuple(args))
			}
		}
	}
	for i := int64(1); i <= 6; i++ {
		inject(int(i), "add_person", i, []string{"us", "fr", "in"}[i%3])
	}
	inject(0, "add_contact", int64(1), int64(2))
	inject(1, "add_contact", int64(2), int64(3))
	inject(2, "add_contact", int64(4), int64(5))
	c.RunRounds(8, 500)

	fmt.Println("\ncontact counts per replica (converged):")
	for i, rt := range rts {
		fmt.Printf("  %s: %d contacts, %d people\n", ids[i], rt.Table("contacts").Len(), rt.Table("people").Len())
	}

	// Fail an entire AZ: the service keeps answering.
	failed := c.FailDomain(cluster.AZ, "az1")
	fmt.Printf("\n!! AZ failure: %v went down\n", failed)
	inject(1, "diagnosed", int64(1))
	c.RunRounds(8, 500)
	for i, rt := range rts {
		if topo.Get(ids[i]).Up() {
			fmt.Printf("  %s still serving: alerts pending = %d\n", ids[i], len(rt.Peek("alert")))
		}
	}
	fmt.Println("\nservice remained available through 1 AZ failure (spec tolerates 2)")
}
