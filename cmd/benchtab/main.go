// Command benchtab regenerates every experiment table from DESIGN.md §4.
//
// Usage:
//
//	benchtab            # run all experiments
//	benchtab -exp=E3    # run one
//	benchtab -quick     # smaller parameters (CI-friendly)
package main

import (
	"flag"
	"fmt"
	"strings"

	"hydro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment ID to run (default: all)")
	quick := flag.Bool("quick", false, "smaller parameters")
	flag.Parse()

	scale := 1
	if *quick {
		scale = 4
	}
	runs := []struct {
		id  string
		run func() experiments.Table
	}{
		{"E1", func() experiments.Table { return experiments.RunE1(2000 / scale) }},
		{"E2", func() experiments.Table { return experiments.RunE2([]int{1, 3, 5}, 20/scale+1) }},
		{"E3", func() experiments.Table { return experiments.RunE3([]int{1000, 10000, 50000 / scale}, 200) }},
		{"E4", func() experiments.Table { return experiments.RunE4(40 / scale) }},
		{"E5", func() experiments.Table { return experiments.RunE5(20/scale + 1) }},
		{"E5b", func() experiments.Table { return experiments.RunE5Mechanisms() }},
		{"E6", func() experiments.Table { return experiments.RunE6() }},
		{"E7", func() experiments.Table { return experiments.RunE7([]int{4, 16, 64}) }},
		{"E8", func() experiments.Table { return experiments.RunE8([]int{32, 64, 128}) }},
		{"E9", func() experiments.Table { return experiments.RunE9([]int{1, 2, 4, 8}, 20000/scale) }},
		{"E10", func() experiments.Table { return experiments.RunE10(20 / scale) }},
		{"E11", func() experiments.Table { return experiments.RunE11() }},
		{"E12", func() experiments.Table { return experiments.RunE12(1000 / scale) }},
	}
	ran := false
	for _, r := range runs {
		if *exp != "" && !strings.EqualFold(*exp, r.id) {
			continue
		}
		fmt.Println(r.run().Render())
		ran = true
	}
	if !ran {
		fmt.Printf("unknown experiment %q; known: E1..E12, E5b\n", *exp)
	}
}
