// Command benchtab regenerates every experiment table from DESIGN.md §4,
// and converts `go test -bench` output into the JSON benchmark record the
// perf trajectory is tracked with.
//
// Usage:
//
//	benchtab            # run all experiments
//	benchtab -exp=E3    # run one
//	benchtab -quick     # smaller parameters (CI-friendly)
//
//	go test -run '^$' -bench . -benchmem ./... | benchtab -benchjson BENCH_1.json
//	go test -run '^$' -bench . -benchmem ./... | benchtab -benchdiff BENCH_1.json -threshold 1.5
//
//	hydroload -csv timings.csv && benchtab -timings timings.csv
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hydro/internal/experiments"
	"hydro/internal/serve"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// parseBench reads `go test -bench` output and extracts benchmark lines.
// Lines look like:
//
//	BenchmarkFoo-8   123   456 ns/op   789 B/op   12 allocs/op   3.4 custom/metric
func parseBench(r *bufio.Scanner) ([]benchResult, error) {
	var out []benchResult
	pkg := ""
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "Benchmark...: output" log line
		}
		res := benchResult{Name: fields[0], Pkg: pkg, Iterations: iters}
		if i := strings.LastIndexByte(res.Name, '-'); i > 0 {
			// Strip the -GOMAXPROCS suffix.
			if _, err := strconv.Atoi(res.Name[i+1:]); err == nil {
				res.Name = res.Name[:i]
			}
		}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		out = append(out, res)
	}
	return out, r.Err()
}

func writeBenchJSON(path string) error {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	results, err := parseBench(sc)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// summarizeTimings re-renders the summary table for a per-request timing
// CSV written by `hydroload -csv` — the offline half of the serving
// latency-breakdown loop (capture under load once, slice afterwards).
func summarizeTimings(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rows, err := serve.ReadCSV(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Print(serve.Summarize(rows).Render())
	return nil
}

// diffBench compares a fresh bench run (stdin) against the committed
// baseline JSON and fails when any shared benchmark slowed down by more
// than the threshold factor. Allocation deltas (allocs/op) are reported
// alongside the timings for visibility — allocation-rate changes predict
// GC-bound regressions before wall-clock shows them on noisy runners —
// but only ns/op gates the run. Benchmarks present on only one side are
// reported but never fail the run (they are new or retired, not
// regressed).
func diffBench(baselinePath string, threshold float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var baseline []benchResult
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("parsing %s: %w", baselinePath, err)
	}
	base := map[string]benchResult{}
	for _, r := range baseline {
		base[r.Pkg+"."+r.Name] = r
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fresh, err := parseBench(sc)
	if err != nil {
		return err
	}
	if len(fresh) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	var regressions []string
	seen := map[string]bool{}
	for _, r := range fresh {
		key := r.Pkg + "." + r.Name
		seen[key] = true
		b, ok := base[key]
		if !ok {
			fmt.Printf("NEW   %-50s %12.0f ns/op\n", key, r.NsPerOp)
			continue
		}
		if b.NsPerOp <= 0 || r.NsPerOp <= 0 {
			continue // metric-only benchmarks carry no timing to compare
		}
		ratio := r.NsPerOp / b.NsPerOp
		status := "ok"
		if ratio > threshold {
			status = "SLOW"
			regressions = append(regressions, fmt.Sprintf("%s: %.0f → %.0f ns/op (%.2f× > %.2f×)",
				key, b.NsPerOp, r.NsPerOp, ratio, threshold))
		}
		allocs := ""
		if b.AllocsPerOp > 0 && r.AllocsPerOp > 0 {
			allocs = fmt.Sprintf("  %.0f → %.0f allocs/op (%.2f×)",
				b.AllocsPerOp, r.AllocsPerOp, r.AllocsPerOp/b.AllocsPerOp)
		}
		fmt.Printf("%-5s %-50s %12.0f → %12.0f ns/op  (%.2f×)%s\n", status, key, b.NsPerOp, r.NsPerOp, ratio, allocs)
	}
	for key := range base {
		if !seen[key] {
			fmt.Printf("GONE  %s\n", key)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed past %.2f×:\n  %s",
			len(regressions), threshold, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("benchdiff: no regression past %.2f× against %s\n", threshold, baselinePath)
	return nil
}

func main() {
	exp := flag.String("exp", "", "experiment ID to run (default: all)")
	quick := flag.Bool("quick", false, "smaller parameters")
	benchjson := flag.String("benchjson", "", "write benchmarks parsed from 'go test -bench' stdin to this JSON `file`")
	benchdiff := flag.String("benchdiff", "", "compare benchmarks parsed from 'go test -bench' stdin against this baseline JSON `file`; exit non-zero on regression")
	threshold := flag.Float64("threshold", 1.5, "slowdown factor tolerated by -benchdiff before failing")
	timings := flag.String("timings", "", "summarize a hydroload per-request timing CSV `file` (p50/p90/p99 per phase)")
	flag.Parse()

	if *timings != "" {
		if err := summarizeTimings(*timings); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		return
	}

	if *benchjson != "" {
		if err := writeBenchJSON(*benchjson); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchjson)
		return
	}
	if *benchdiff != "" {
		if err := diffBench(*benchdiff, *threshold); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		return
	}

	scale := 1
	if *quick {
		scale = 4
	}
	runs := []struct {
		id  string
		run func() experiments.Table
	}{
		{"E1", func() experiments.Table { return experiments.RunE1(2000 / scale) }},
		{"E2", func() experiments.Table { return experiments.RunE2([]int{1, 3, 5}, 20/scale+1) }},
		{"E3", func() experiments.Table { return experiments.RunE3([]int{1000, 10000, 50000 / scale}, 200) }},
		{"E4", func() experiments.Table { return experiments.RunE4(40 / scale) }},
		{"E5", func() experiments.Table { return experiments.RunE5(20/scale + 1) }},
		{"E5b", func() experiments.Table { return experiments.RunE5Mechanisms() }},
		{"E6", func() experiments.Table { return experiments.RunE6() }},
		{"E7", func() experiments.Table { return experiments.RunE7([]int{4, 16, 64}) }},
		{"E8", func() experiments.Table { return experiments.RunE8([]int{32, 64, 128}) }},
		{"E9", func() experiments.Table { return experiments.RunE9([]int{1, 2, 4, 8}, 20000/scale) }},
		{"E10", func() experiments.Table { return experiments.RunE10(20 / scale) }},
		{"E11", func() experiments.Table { return experiments.RunE11() }},
		{"E12", func() experiments.Table { return experiments.RunE12(1000 / scale) }},
		{"E13", func() experiments.Table { return experiments.RunE13(8/scale+1, 400/scale) }},
		{"E14", func() experiments.Table { return experiments.RunE14(12 / scale) }},
	}
	ran := false
	for _, r := range runs {
		if *exp != "" && !strings.EqualFold(*exp, r.id) {
			continue
		}
		fmt.Println(r.run().Render())
		ran = true
	}
	if !ran {
		fmt.Printf("unknown experiment %q; known: E1..E14, E5b\n", *exp)
	}
}
