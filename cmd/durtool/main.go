// Command durtool inspects and verifies a durability directory (the
// changelog + snapshot pair internal/durable maintains for a transducer's
// incremental fixpoint).
//
// Usage:
//
//	durtool <dir>             # summarize snapshot and changelog
//	durtool -verify <dir>     # additionally replay the directory against
//	                          # the built-in TC program and report the
//	                          # recovered relation sizes
//
// Inspection is read-only. -verify opens the directory exactly like a
// recovering node would (torn tails truncated, aborted final records
// dropped), so a clean -verify run means a node will boot from this
// directory. It is only meaningful for directories journaling the demo
// transitive-closure program; real deployments verify with their own
// program via durable.Open + Recover.
package main

import (
	"flag"
	"fmt"
	"os"

	"hydro/internal/datalog"
	"hydro/internal/durable"
)

func main() {
	verify := flag.Bool("verify", false, "replay the directory with the demo TC program and report recovered state")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: durtool [-verify] <dir>")
		os.Exit(2)
	}
	dir := flag.Arg(0)
	fs, err := durable.DirFS(dir)
	if err != nil {
		fatal(err)
	}
	info, err := durable.Inspect(fs)
	if err != nil {
		fatal(err)
	}
	if info.HasSnapshot {
		fmt.Printf("snapshot: seq %d, %d entries, %d bytes\n",
			info.SnapshotSeq, info.SnapshotEntries, info.SnapshotBytes)
	} else {
		fmt.Println("snapshot: none")
	}
	fmt.Printf("changelog: base seq %d, %d records through seq %d, %d bytes\n",
		info.LogBaseSeq, info.LogRecords, info.LogLastSeq, info.LogBytes)
	if info.TornBytes > 0 {
		fmt.Printf("changelog: %d torn trailing bytes (recovery will truncate)\n", info.TornBytes)
	}
	if !*verify {
		return
	}

	p, err := datalog.NewProgram(
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}},
			Body: []datalog.Literal{{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}}},
		},
		datalog.Rule{
			Head: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("z")}},
			Body: []datalog.Literal{
				{Atom: datalog.Atom{Pred: "path", Args: []datalog.Term{datalog.V("x"), datalog.V("y")}}},
				{Atom: datalog.Atom{Pred: "edge", Args: []datalog.Term{datalog.V("y"), datalog.V("z")}}},
			},
		},
	)
	if err != nil {
		fatal(err)
	}
	store, err := durable.Open(durable.Options{FS: fs})
	if err != nil {
		fatal(err)
	}
	defer store.Close()
	inc, err := store.Recover(p, datalog.NewDatabase())
	if err != nil {
		fatal(fmt.Errorf("recovery failed: %w", err))
	}
	fmt.Printf("recovered: seq %d (snapshot %d + %d replayed records)\n",
		store.LastSeq(), store.SnapshotSeq(), store.LastSeq()-store.SnapshotSeq())
	db := inc.DB()
	for _, name := range db.Names() {
		fmt.Printf("  %-12s %d tuples\n", name, db.Get(name).Len())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "durtool:", err)
	os.Exit(1)
}
