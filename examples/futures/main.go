// Command futures demonstrates Appendix A.2: Ray-style promises/futures
// lifted onto the transducer. Four promises launch, local work proceeds
// while they execute, and ray.get-style resolution drives the event loop
// until all futures land. Lazy kickoff is shown as the alternate semantics
// the appendix mentions.
package main

import (
	"fmt"
	"math/rand"

	"hydro/internal/lift/future"
	"hydro/internal/transducer"
)

func main() {
	rt := transducer.New("node1", 9)
	rt.SetDelay(func(r *rand.Rand) int { return 1 + r.Intn(2) })

	e := future.NewEngine(rt, future.Eager)

	// futures = [f.remote(i) for i in range(4)]
	f := func(arg any) any { return arg.(int) * arg.(int) }
	var futures []future.Future
	for i := 0; i < 4; i++ {
		futures = append(futures, e.Remote(f, i))
	}

	// x = g() — local work runs while the promises execute.
	x := 0
	for i := 1; i <= 100; i++ {
		x += i
	}
	fmt.Printf("local g() finished first: x = %d\n", x)
	fmt.Printf("futures resolved before get? %v\n", futures[0].Resolved())

	// print(ray.get(futures))
	results, err := e.Get(futures, 100)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ray.get(futures) = %v\n", results)

	// Lazy kickoff: promises wait in a table until demanded.
	rt2 := transducer.New("node2", 10)
	rt2.SetDelay(func(r *rand.Rand) int { return 1 })
	lazy := future.NewEngine(rt2, future.Lazy)
	a := lazy.Remote(f, 7)
	b := lazy.Remote(f, 8)
	rt2.RunUntilIdle(20)
	fmt.Printf("\nlazy engine launched %d of 2 promises before demand\n", lazy.Launched)
	got, _ := lazy.Get([]future.Future{a}, 100)
	fmt.Printf("after demanding the first: launched=%d, value=%v\n", lazy.Launched, got[0])
	_ = b // never demanded, never runs
}
