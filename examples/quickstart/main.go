// Command quickstart runs the paper's COVID-19 tracker (Fig 2/3) end to
// end on a single transducer: it compiles the HydroLogic source, prints the
// monotonicity analysis and facet choices the compiler made, then drives
// the application and shows the resulting state and alerts.
package main

import (
	"fmt"

	"hydro"
	"hydro/internal/consistency"
)

func main() {
	c := hydro.MustCompile(hydro.CovidSource, hydro.Options{
		UDFs: map[string]hydro.UDF{
			// Stand-in for the paper's black-box covid_predict model.
			"covid_predict": func(args []any) any {
				return float64(args[0].(int64)%100) / 100.0
			},
		},
	})

	fmt.Println("=== Monotonicity analysis (the §8.2 typechecker) ===")
	fmt.Print(c.Analysis.Report())

	fmt.Println("\n=== Consistency mechanism choices (§7.2) ===")
	fmt.Print(consistency.Report(c.Choices))

	fmt.Println("\n=== Physical layouts (§5, Chestnut) ===")
	for table, design := range c.Layouts {
		fmt.Printf("  %-10s -> %s\n", table, design)
	}

	rt, err := c.Instantiate("node1", 42)
	if err != nil {
		panic(err)
	}

	fmt.Println("\n=== Running the application ===")
	// A small social graph: 1-2-3 chained, 4 isolated.
	rt.Inject("add_person", hydro.Tuple{int64(1), "us"})
	rt.Inject("add_person", hydro.Tuple{int64(2), "us"})
	rt.Inject("add_person", hydro.Tuple{int64(3), "fr"})
	rt.Inject("add_person", hydro.Tuple{int64(4), "in"})
	rt.Inject("add_contact", hydro.Tuple{int64(1), int64(2)})
	rt.Inject("add_contact", hydro.Tuple{int64(2), int64(3)})
	rt.RunUntilIdle(50)

	// Person 1 is diagnosed: 2 and 3 must be alerted transitively.
	rt.Inject("diagnosed", hydro.Tuple{int64(1)})
	rt.RunUntilIdle(50)

	fmt.Println("people:")
	for _, row := range rt.Table("people").Tuples() {
		fmt.Printf("  pid=%v country=%-3v covid=%-5v vaccinated=%v\n", row[0], row[1], row[2], row[3])
	}
	fmt.Println("alerts sent to:")
	for _, m := range rt.Peek("alert") {
		fmt.Printf("  pid=%v\n", m.Payload[0])
	}

	// Vaccinate person 2 (the serializable, invariant-guarded handler).
	rt.Inject("vaccinate", hydro.Tuple{int64(2)})
	rt.RunUntilIdle(50)
	fmt.Printf("vaccine_count after one dose: %v\n", rt.Var("vaccine_count"))

	// Ask the ML stub for person 3's likelihood.
	id := rt.Inject("likelihood", hydro.Tuple{int64(3)})
	rt.RunUntilIdle(50)
	for _, m := range rt.Drain("likelihood<response>") {
		if m.Payload[0] == id {
			fmt.Printf("likelihood(3) = %v\n", m.Payload[1])
		}
	}
	fmt.Printf("\nruntime stats: %+v\n", rt.Stats())
}
