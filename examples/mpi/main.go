// Command mpi demonstrates Appendix A.3: MPI collective communication
// lifted into the Hydro substrate, including the "well-known optimizations"
// (tree and ring schedules) the appendix says Hydrolysis could apply in
// place of the naive specifications. It prints a cost comparison across
// schedules — the E7 experiment in miniature.
package main

import (
	"fmt"

	"hydro/internal/lift/mpi"
	"hydro/internal/simnet"
)

func main() {
	const n = 16
	sum := func(a, b any) any { return a.(int) + b.(int) }

	// 10µs links plus 5µs per-send NIC occupancy: fanning 15 messages out
	// of one root is not free, which is exactly why tree schedules win.
	cfg := simnet.Config{Seed: 1, MinLatency: 10, MaxLatency: 10, SendOverhead: 5}
	fmt.Printf("world size %d, 10µs links, 5µs send overhead\n\n", n)
	fmt.Printf("%-10s %-7s %10s %12s\n", "collective", "algo", "messages", "virtual-time")
	for _, algo := range []mpi.Algo{mpi.Naive, mpi.Tree, mpi.Ring} {
		net := simnet.New(cfg)
		w := mpi.NewWorld(net, n)
		st := w.Bcast("b", 0, "payload", algo)
		fmt.Printf("%-10s %-7s %10d %10dµs\n", "bcast", algo, st.Messages, st.Elapsed)
	}
	for _, algo := range []mpi.Algo{mpi.Naive, mpi.Tree, mpi.Ring} {
		net := simnet.New(cfg)
		w := mpi.NewWorld(net, n)
		for i := 0; i < n; i++ {
			w.SetLocal(i, 1)
		}
		st := w.Allreduce("ar", sum, algo)
		v, _ := w.Got("ar", n-1)
		fmt.Printf("%-10s %-7s %10d %10dµs   (result %v)\n", "allreduce", algo, st.Messages, st.Elapsed, v)
	}

	// The one-to-all / all-to-one / all-to-all taxonomy, exercised once.
	net := simnet.New(simnet.Config{Seed: 2, MinLatency: 10, MaxLatency: 10})
	w := mpi.NewWorld(net, 4)
	arr := []any{"a", "b", "c", "d"}
	w.Scatter("s", 0, arr)
	for i := 0; i < 4; i++ {
		w.SetLocal(i, fmt.Sprintf("from-%d", i))
	}
	w.Gather("g", 0)
	gathered, _ := w.Got("g", 0)
	fmt.Printf("\nscatter [a b c d]: rank3 got %v\n", mustGot(w, "s", 3))
	fmt.Printf("gather at rank0: %v\n", gathered)

	rows := mpi.NewWorld(simnet.New(simnet.Config{Seed: 3, MinLatency: 10, MaxLatency: 10}), 3)
	for i := 0; i < 3; i++ {
		row := make([]any, 3)
		for j := range row {
			row[j] = fmt.Sprintf("%d→%d", i, j)
		}
		rows.SetLocal(i, row)
	}
	rows.Alltoall("a2a")
	fmt.Printf("alltoall: rank1 column = %v\n", mustGot(rows, "a2a", 1))
}

func mustGot(w *mpi.World, op string, rank int) any {
	v, ok := w.Got(op, rank)
	if !ok {
		panic("missing collective result")
	}
	return v
}
