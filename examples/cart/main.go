// Command cart demonstrates the Dynamo shopping-cart design of §7.1 and
// the *seal placement* optimization: cart updates are coordination-free
// CRDT merges across replicas; checkout needs agreement only on the final
// manifest, and moving that decision to the (unreplicated) client makes the
// whole lifecycle coordination-free — each replica checks out unilaterally
// once its contents catch up to the sealed manifest.
package main

import (
	"fmt"

	"hydro/internal/crdt"
)

func main() {
	// Three replicas of one user's cart, updated divergently (e.g. the
	// user's phone and laptop hitting different datacenters).
	r1 := crdt.NewCart("r1").AddItem("book", 1)
	r2 := crdt.NewCart("r2").AddItem("pen", 2)
	r2Early := r2                               // snapshot of r2's state before gossip, used below
	r3 := crdt.NewCart("r3").AddItem("book", 1) // concurrent duplicate add

	fmt.Println("replica manifests before any exchange:")
	fmt.Printf("  r1: %q\n  r2: %q\n  r3: %q\n", r1.Manifest(), r2.Manifest(), r3.Manifest())

	// Anti-entropy gossip: merges in any order converge (ACI).
	r1 = r1.Merge(r2).Merge(r3)
	r2 = r2.Merge(r1)
	r3 = r3.Merge(r2)
	fmt.Printf("\nafter gossip, converged manifest: %q\n", r1.Manifest())

	// The client seals unilaterally — no coordination round. The seal is
	// itself lattice state (an LWW register), so it propagates by the same
	// gossip as everything else.
	client := r1.Seal(1000)
	manifest, _ := client.Sealed()
	fmt.Printf("\nclient seals the cart: manifest=%q (no replica coordination)\n", manifest)

	// A lagging replica — one that saw only r2's updates plus the seal
	// (message reordering delivered the checkout decision first) — cannot
	// check out yet...
	lagging := crdt.NewCart("r4").Merge(r2Early).Merge(sealOnly(client))
	fmt.Printf("lagging replica checked out? %v (contents %q != manifest)\n",
		lagging.CheckedOut(), lagging.Manifest())

	// ...until the remaining updates arrive; then checkout is local+free.
	lagging = lagging.Merge(client)
	fmt.Printf("after catching up:        %v (contents %q)\n",
		lagging.CheckedOut(), lagging.Manifest())

	fmt.Println("\ncoordination rounds used for the entire checkout: 0")
}

// sealOnly extracts just the seal register, modeling a replica that heard
// the seal before the cart contents (message reordering).
func sealOnly(c *crdt.Cart) *crdt.Cart {
	empty := crdt.NewCart("seal-carrier")
	return empty.Merge(c.WithoutItems())
}
