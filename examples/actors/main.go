// Command actors demonstrates Appendix A.1: the Actor model lifted onto the
// HydroLogic transducer. A supervisor spawns workers, fans out tasks, and a
// worker uses the tricky mid-method synchronous receive (m_pre / receive /
// m_post) that the appendix highlights — state is preserved across the wait
// by a continuation, and other messages buffer meanwhile.
package main

import (
	"fmt"
	"math/rand"

	"hydro/internal/datalog"
	"hydro/internal/lift/actor"
	"hydro/internal/transducer"
)

func main() {
	rt := transducer.New("node1", 7)
	rt.SetDelay(func(r *rand.Rand) int { return 1 })
	sys := actor.NewSystem(rt)

	// A collector tallies squared numbers from workers.
	total := 0
	received := 0
	collector := sys.Spawn(func(ctx *actor.Ctx, msg any) {
		total += int(msg.(int64))
		received++
	})

	// The supervisor spawns one worker per task — "spawning additional
	// actors" is one of the three actor primitives.
	supervisor := sys.Spawn(func(ctx *actor.Ctx, msg any) {
		n := msg.(int64)
		for i := int64(1); i <= n; i++ {
			i := i
			w := ctx.Spawn(func(wctx *actor.Ctx, m any) {
				x := m.(int64)
				wctx.Send(collector, x*x)
				wctx.Stop()
			})
			ctx.Send(w, i)
		}
	})
	sys.Send(supervisor, int64(5))
	rt.RunUntilIdle(50)
	fmt.Printf("sum of squares 1..5 via actors: %d (from %d workers)\n", total, received)

	// Mid-method receive: approver runs pre-work, blocks for a decision
	// message, then completes with the preserved state.
	outcome := ""
	approver := sys.Spawn(func(ctx *actor.Ctx, msg any) {
		request := msg.(string)
		prepared := "prepared(" + request + ")"
		fmt.Printf("approver: %s, now waiting for decision...\n", prepared)
		ctx.Receive("decision", func(ctx *actor.Ctx, decision any) {
			outcome = prepared + " -> " + decision.(string)
		})
	})
	sys.Send(approver, "purchase-order-17")
	rt.RunUntilIdle(20)

	// These arrive while the approver is blocked and buffer.
	sys.Send(approver, "unrelated-chatter")
	rt.RunUntilIdle(20)
	fmt.Printf("outcome while waiting: %q (chatter buffered)\n", outcome)

	// The decision arrives under the awaited key.
	rt.Inject("actor", datalog.Tuple{string(approver), "decision", "APPROVED"})
	rt.RunUntilIdle(20)
	fmt.Printf("final outcome: %q\n", outcome)
	fmt.Printf("messages delivered by the actor system: %d\n", sys.Delivered)
}
