package hydro

import (
	"math/rand"
	"strings"
	"testing"

	"hydro/internal/cluster"
	"hydro/internal/consistency"
	"hydro/internal/simnet"
	"hydro/internal/transducer"
)

// Integration tests over the public API: the full pipeline from source text
// to a running (and distributed) application.

func testUDFs() map[string]UDF {
	return map[string]UDF{
		"covid_predict": func(args []any) any { return 0.25 },
	}
}

func TestPublicCompileAndRun(t *testing.T) {
	c, err := Compile(CovidSource, Options{UDFs: testUDFs()})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := c.Instantiate("api-test", 1)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetDelay(func(r *rand.Rand) int { return 1 })
	rt.Inject("add_person", Tuple{int64(1), "us"})
	rt.Inject("add_contact", Tuple{int64(1), int64(2)})
	rt.RunUntilIdle(30)
	if rt.Table("people").Len() != 1 || rt.Table("contacts").Len() != 2 {
		t.Fatalf("state: people=%d contacts=%d", rt.Table("people").Len(), rt.Table("contacts").Len())
	}
}

func TestMustCompilePanicsOnBadSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile should panic on invalid source")
		}
	}()
	MustCompile("on broken(", Options{})
}

func TestParseAndAnalyzePublic(t *testing.T) {
	p, err := Parse(CovidSource)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(p)
	if len(a.CoordinationPoints(p)) != 1 {
		t.Fatalf("coordination points = %v", a.CoordinationPoints(p))
	}
}

// TestDistributedCovidConverges is the full-stack integration: three
// compiled replicas across AZs exchanging monotone updates converge to the
// same contact graph, and an AZ failure does not stop the survivors.
func TestDistributedCovidConverges(t *testing.T) {
	compiled := MustCompile(CovidSource, Options{UDFs: testUDFs()})
	topo := cluster.NewTopology(3, 1, 1, cluster.ClassSmall)
	cl := cluster.New(topo, simnet.Config{Seed: 5, MinLatency: 50, MaxLatency: 150})

	machines, err := topo.SpreadAcross(cluster.AZ, 3)
	if err != nil {
		t.Fatal(err)
	}
	var rts []*transducer.Runtime
	for i, m := range machines {
		rt, err := compiled.Instantiate(m.ID, int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		rt.SetDelay(func(r *rand.Rand) int { return 1 })
		cl.Host(m.ID, rt)
		rts = append(rts, rt)
	}
	// Replicated monotone writes (what Hydrolysis emits for MechNone).
	broadcast := func(handler string, args Tuple) {
		for _, rt := range rts {
			rt.Inject(handler, args)
		}
	}
	for i := int64(1); i <= 4; i++ {
		broadcast("add_person", Tuple{i, "us"})
	}
	broadcast("add_contact", Tuple{int64(1), int64(2)})
	broadcast("add_contact", Tuple{int64(2), int64(3)})
	cl.RunRounds(6, 300)
	for i, rt := range rts {
		if rt.Table("contacts").Len() != 4 {
			t.Fatalf("replica %d: contacts=%d, want 4", i, rt.Table("contacts").Len())
		}
	}

	// Fail one AZ; survivors keep serving and deriving alerts.
	cl.FailDomain(cluster.AZ, machines[0].AZ)
	for _, rt := range rts[1:] {
		rt.Inject("diagnosed", Tuple{int64(1)})
	}
	cl.RunRounds(6, 300)
	for i, rt := range rts[1:] {
		if len(rt.Peek("alert")) == 0 {
			t.Fatalf("surviving replica %d produced no alerts", i+1)
		}
	}
}

// TestFacetReportsRoundTrip exercises the human-readable compiler artifacts
// the paper's evolutionary story depends on.
func TestFacetReportsRoundTrip(t *testing.T) {
	c := MustCompile(CovidSource, Options{UDFs: testUDFs()})
	analysis := c.Analysis.Report()
	mech := consistency.Report(c.Choices)
	for _, want := range []string{"transitive", "vaccinate", "non-monotone"} {
		if !strings.Contains(analysis, want) {
			t.Fatalf("analysis report missing %q:\n%s", want, analysis)
		}
	}
	if !strings.Contains(mech, "coordination") || !strings.Contains(mech, "CALM") {
		t.Fatalf("mechanism report:\n%s", mech)
	}
	meta := consistency.CheckMeta(c.Program, c.Analysis)
	if len(meta) != 0 {
		t.Fatalf("COVID app has no cross-handler downgrades, got %v", meta)
	}
}
