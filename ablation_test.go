package hydro

// Ablation benchmarks for the design choices DESIGN.md §3 calls out: what
// each optimization buys, measured by switching it off.

import (
	"fmt"
	"testing"

	"hydro/internal/chestnut"
	"hydro/internal/datalog"
	"hydro/internal/flow"
	"hydro/internal/lattice"
	"hydro/internal/storage"
)

// Ablation: hash index on vs off for point lookups (the access-path choice
// of §5.1).
func BenchmarkAblationIndexedLookup(b *testing.B) {
	tbl := chestnut.Build("t", "id", chestnut.Design{Layout: storage.LayoutHash})
	for i := 0; i < 10000; i++ {
		tbl.Insert(storage.Row{"id": fmt.Sprintf("k%05d", i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup("id", fmt.Sprintf("k%05d", i%10000))
	}
}

func BenchmarkAblationScanLookup(b *testing.B) {
	tbl := chestnut.Build("t", "id", chestnut.Design{Layout: storage.LayoutHeap})
	for i := 0; i < 10000; i++ {
		tbl.Insert(storage.Row{"id": fmt.Sprintf("k%05d", i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup("id", fmt.Sprintf("k%05d", i%10000))
	}
}

// Ablation: relation lookup through the on-demand column index vs a forced
// full scan (datalog join inner loop).
func BenchmarkAblationDatalogIndexed(b *testing.B) {
	r := datalog.NewRelation("t", 2)
	for i := 0; i < 5000; i++ {
		r.Insert(datalog.Tuple{int64(i % 100), int64(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup([]int{0}, []any{int64(i % 100)})
	}
}

func BenchmarkAblationDatalogScan(b *testing.B) {
	r := datalog.NewRelation("t", 2)
	for i := 0; i < 5000; i++ {
		r.Insert(datalog.Tuple{int64(i % 100), int64(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Full enumeration stands in for a lookup with no usable index.
		for range r.Tuples() {
			break
		}
	}
}

// Ablation: static (incremental) vs per-tick join state — Hydroflow's
// 'static vs 'tick persistence choice (§8.1).
func BenchmarkAblationJoinStatic(b *testing.B) {
	benchJoin(b, flow.Static)
}

func BenchmarkAblationJoinPerTick(b *testing.B) {
	benchJoin(b, flow.PerTick)
}

func benchJoin(b *testing.B, p flow.Persistence) {
	g := flow.NewGraph()
	l := g.NewSource("l")
	r := g.NewSource("r")
	j := g.Join(l.Handle, r.Handle, "j",
		func(v flow.Row) any { return v.(int) % 64 },
		func(v flow.Row) any { return v.(int) % 64 },
		p)
	g.ForEach(j, "sink", func(v flow.Row) {})
	// Build side preloaded for the static case.
	for i := 0; i < 512; i++ {
		r.Push(i)
	}
	g.RunTick()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Push(i)
		g.RunTick()
	}
}

// Ablation: lattice-cell change suppression — emitting only on growth vs a
// plain map stage that forwards every input (§8.1 lattice pipelining).
func BenchmarkAblationLatticeCellSuppression(b *testing.B) {
	g := flow.NewGraph()
	src := g.NewSource("s")
	m := flow.MergeFn{
		Merge: func(a, c flow.Row) flow.Row { return a.(lattice.Max[int]).Merge(c.(lattice.Max[int])) },
		Equal: func(a, c flow.Row) bool { return a.(lattice.Max[int]).Equal(c.(lattice.Max[int])) },
	}
	cell := g.NewLatticeCell(src.Handle, "max", lattice.NewMax(0), m, flow.Static)
	downstream := 0
	g.ForEach(cell.Handle, "sink", func(v flow.Row) { downstream++ })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Dominated inputs: the cell suppresses all but the first.
		src.Push(lattice.NewMax(0))
		g.RunTick()
	}
	if downstream > 1 {
		b.Fatalf("suppression failed: %d emissions", downstream)
	}
}

func BenchmarkAblationNoSuppression(b *testing.B) {
	g := flow.NewGraph()
	src := g.NewSource("s")
	forwarded := g.Map(src.Handle, "fwd", func(v flow.Row) flow.Row { return v })
	g.ForEach(forwarded, "sink", func(v flow.Row) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Push(lattice.NewMax(0))
		g.RunTick()
	}
}
