module hydro

go 1.24
