GO ?= go
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

.PHONY: build test vet ci bench benchdiff tables fuzz soak testbin test-sharded test-failover serve-bench serve-soak

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

ci: build vet test

# bench runs every benchmark (root experiment wrappers + datalog micro
# benchmarks) and records the parsed results in BENCH_1.json so the perf
# trajectory is tracked PR over PR.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./... | tee /dev/stderr | $(GO) run ./cmd/benchtab -benchjson BENCH_1.json

# benchdiff guards the perf trajectory: it re-runs every benchmark and
# fails if any shared benchmark slowed down more than BENCHDIFF_THRESHOLD×
# against the committed BENCH_1.json (see ROADMAP.md for the workflow).
BENCHDIFF_THRESHOLD ?= 1.5
benchdiff:
	$(GO) test -run '^$$' -bench . -benchmem ./... | $(GO) run ./cmd/benchtab -benchdiff BENCH_1.json -threshold $(BENCHDIFF_THRESHOLD)

tables:
	$(GO) run ./cmd/benchtab -quick

# fuzz is the generative smoke run CI executes on every PR: beyond the
# committed seed corpus (which plain `go test` already replays), it spends
# FUZZTIME mutating tick sequences of interleaved inserts/deletes against
# the three-way incremental equivalence oracle.
FUZZTIME ?= 20s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzIncrementalEquivalence -fuzztime $(FUZZTIME) ./internal/datalog
	$(GO) test -run '^$$' -fuzz FuzzShardedEquivalence -fuzztime $(FUZZTIME) ./internal/shard

# test-sharded is the distributed-dataflow gate: the sharded-vs-single-node
# equivalence suite (SHARD_COUNTS picks the replica counts under test) plus
# the simnet chaos/churn tests, all under -race.
SHARD_COUNTS ?= 1,2,4
test-sharded:
	SHARD_COUNTS=$(SHARD_COUNTS) $(GO) test -race -run 'TestSharded|TestSink|TestPlacement|TestDeclared|FuzzShardedEquivalence' ./internal/shard ./internal/simnet

# test-failover is the replicated-control-plane gate (DESIGN.md §13): the
# leader-kill/partition chaos suite at every coordinator stage, the 50-seed
# randomized failover sweep against the single-coordinator oracle, the
# epoch-fencing regression, and the 50-seed election-determinism sweep —
# all under -race.
test-failover:
	$(GO) test -race -run 'TestFailover|TestDeposed|TestCoordinator|TestElectionDeterminism' ./internal/shard ./internal/consensus

# testbin compiles every package's test binary (without running it) into
# the git-ignored $(TESTBIN_DIR) — use this instead of bare `go test -c`,
# which litters the repo root with *.test files.
TESTBIN_DIR ?= .testbin
testbin:
	@mkdir -p $(TESTBIN_DIR)
	@for pkg in $$($(GO) list ./...); do \
		$(GO) test -c -o $(TESTBIN_DIR)/$$(basename $$pkg).test $$pkg || exit 1; \
	done
	@ls -1 $(TESTBIN_DIR)

# soak hammers the crash-recovery harness well past the checked-in seed
# budget, under -race, with clock-derived seeds so every run explores new
# kill points. Each seed kills a durable store at a random write offset
# and requires byte-identical recovery against a never-crashed oracle
# (DESIGN.md §10). SOAK_SEEDS/SOAK_TICKS scale the run.
SOAK_SEEDS ?= 300
SOAK_TICKS ?= 60
soak: test-failover
	$(GO) test -race -run '^TestCrashRecovery$$' ./internal/durable -crash-seeds $(SOAK_SEEDS) -crash-ticks $(SOAK_TICKS) -crash-rand

# serve-bench is the serving-path perf snapshot, now an A/B across the
# pipelined and single-loop serving modes: the ingestion benchmarks
# (per-message vs batched, BenchmarkServeSubmitPipeline vs
# BenchmarkServeSubmitSingleLoop — both land in benchtab via `make bench`)
# followed by two hydroload zipfian open-loop runs, pipelined and
# -single-loop, each printing the enqueue→flush→eval→respond latency
# breakdown plus the overlap metrics (eval busy / collect-wait /
# handoff-block) and writing its per-request timing CSV.
HYDROLOAD_N ?= 20000
HYDROLOAD_RATE ?= 50000
HYDROLOAD_CSV ?= .testbin/hydroload-timings.csv
HYDROLOAD_CSV_1LOOP ?= .testbin/hydroload-timings-singleloop.csv
serve-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkServe' -benchmem ./internal/serve
	@mkdir -p $(dir $(HYDROLOAD_CSV))
	@echo "== hydroload: pipelined =="
	$(GO) run ./cmd/hydroload -n $(HYDROLOAD_N) -rate $(HYDROLOAD_RATE) -csv $(HYDROLOAD_CSV)
	$(GO) run ./cmd/benchtab -timings $(HYDROLOAD_CSV)
	@echo "== hydroload: single-loop baseline =="
	$(GO) run ./cmd/hydroload -n $(HYDROLOAD_N) -rate $(HYDROLOAD_RATE) -single-loop -csv $(HYDROLOAD_CSV_1LOOP)
	$(GO) run ./cmd/benchtab -timings $(HYDROLOAD_CSV_1LOOP)

# serve-soak is the serving-path correctness gate, scaled past the default
# suite: the batched≡serial equivalence sweep, the pipelined-lanes
# (executed-order oracle) and fan-out-into-shard-deployment sweeps, every
# server-shell test (quota/deadline/close/gauge regressions included) and
# the batched-beats-per-message throughput gate, all under -race.
SERVE_SEEDS ?= 60
SERVE_REQS ?= 150
serve-soak:
	$(GO) test -race -run 'TestServe|TestBatched|TestPipelined|TestPipeline' ./internal/serve -serve-seeds $(SERVE_SEEDS) -serve-reqs $(SERVE_REQS)
