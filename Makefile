GO ?= go
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

.PHONY: build test vet ci bench tables

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

ci: build vet test

# bench runs every benchmark (root experiment wrappers + datalog micro
# benchmarks) and records the parsed results in BENCH_1.json so the perf
# trajectory is tracked PR over PR.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./... | tee /dev/stderr | $(GO) run ./cmd/benchtab -benchjson BENCH_1.json

tables:
	$(GO) run ./cmd/benchtab -quick
