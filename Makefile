GO ?= go
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

.PHONY: build test vet ci bench benchdiff tables

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

ci: build vet test

# bench runs every benchmark (root experiment wrappers + datalog micro
# benchmarks) and records the parsed results in BENCH_1.json so the perf
# trajectory is tracked PR over PR.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./... | tee /dev/stderr | $(GO) run ./cmd/benchtab -benchjson BENCH_1.json

# benchdiff guards the perf trajectory: it re-runs every benchmark and
# fails if any shared benchmark slowed down more than BENCHDIFF_THRESHOLD×
# against the committed BENCH_1.json (see ROADMAP.md for the workflow).
BENCHDIFF_THRESHOLD ?= 1.5
benchdiff:
	$(GO) test -run '^$$' -bench . -benchmem ./... | $(GO) run ./cmd/benchtab -benchdiff BENCH_1.json -threshold $(BENCHDIFF_THRESHOLD)

tables:
	$(GO) run ./cmd/benchtab -quick
