// Package hydro is the public API of this Go reproduction of "New
// Directions in Cloud Programming" (CIDR '21). It re-exports the stable
// surface of the internal packages:
//
//   - Compile / MustCompile: HydroLogic source → compiled program
//     (queries, handler closures, facet choices, physical layouts).
//   - Compiled.Instantiate: a runnable single-node transducer.
//   - Analyze: the monotonicity/CALM typechecker on its own.
//   - The lattice and CRDT algebra, for building monotone state directly.
//
// Quickstart:
//
//	c, err := hydro.Compile(hydro.CovidSource, hydro.Options{UDFs: ...})
//	rt, _ := c.Instantiate("node1", 42)
//	rt.Inject("add_person", hydro.Tuple{int64(1), "us"})
//	rt.RunUntilIdle(100)
//
// See examples/ for full programs and DESIGN.md for the system map.
package hydro

import (
	"hydro/internal/datalog"
	"hydro/internal/hlang"
	"hydro/internal/hydrolysis"
	"hydro/internal/transducer"
)

// Compiled is a compiled HydroLogic program: see hydrolysis.Compiled.
type Compiled = hydrolysis.Compiled

// Options configures compilation (UDF implementations, workload hints).
type Options = hydrolysis.Options

// UDF is a black-box function implementation supplied at compile time.
type UDF = hydrolysis.UDF

// Program is a parsed HydroLogic program (the IR of §3).
type Program = hlang.Program

// Analysis is the monotonicity/CALM analysis result (§8.2).
type Analysis = hlang.Analysis

// Runtime is a single-node transducer event loop (§3.1).
type Runtime = transducer.Runtime

// Tuple is one fact/message payload.
type Tuple = datalog.Tuple

// Message is a mailbox entry.
type Message = transducer.Message

// CovidSource is the paper's running example (Fig 2/3) in HydroLogic.
const CovidSource = hlang.CovidSource

// Compile parses, checks, analyzes and compiles HydroLogic source.
func Compile(src string, opts Options) (*Compiled, error) {
	return hydrolysis.Compile(src, opts)
}

// MustCompile is Compile, panicking on error (for examples and tests over
// known-good sources).
func MustCompile(src string, opts Options) *Compiled {
	c, err := Compile(src, opts)
	if err != nil {
		panic(err)
	}
	return c
}

// Parse parses and checks HydroLogic source without compiling it.
func Parse(src string) (*Program, error) { return hlang.Parse(src) }

// Analyze runs the monotonicity typechecker and dataflow analysis.
func Analyze(p *Program) *Analysis { return hlang.Analyze(p) }
